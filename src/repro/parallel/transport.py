"""Pluggable worker transports: how pool workers are spawned and reached.

The resident pool (:mod:`repro.parallel.persistent`) and the one-shot
backend (:mod:`repro.parallel.pool`) used to construct
``multiprocessing`` pipes and processes inline — which welded every
layer above them (engine, service, sharded serving tier) to one
bootstrap mechanism.  This module is the seam that unwelds them, in
the style of chainermn's communicator registry: the pools speak to a
:class:`WorkerChannel` (send a command, receive a reply, observe
liveness) and a named :class:`Transport` decides what is behind it —
an in-process ``multiprocessing`` pipe today
(:class:`PipeTransport`), a socket to a remote host tomorrow, without
touching the supervision or routing layers.

Contract every transport must honor (what the pools' crash/deadline
supervision is written against):

* :meth:`Transport.spawn` returns a channel whose worker is already
  running its command loop,
* a dead worker is observable **without blocking**: its
  ``wait_objects()`` become ready, ``alive`` turns false, and reading
  the channel raises ``EOFError``/``OSError`` — never hangs,
* ``terminate_quietly()`` / ``close()`` are idempotent best-effort
  teardown: safe on a worker in any state, swallow races.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, Callable, Dict, Tuple, Type

from repro.errors import ConfigurationError

__all__ = [
    "WorkerChannel",
    "Transport",
    "PipeTransport",
    "TRANSPORTS",
    "register_transport",
    "make_transport",
]


class WorkerChannel:
    """One live worker endpoint: a process handle plus its message pipe.

    The pools never touch ``multiprocessing`` primitives directly —
    everything they need (scatter a command, drain a reply, watch for
    death, tear down) is on this object, so a transport that backs it
    with something other than a local spawn process only has to
    provide the same observable behavior.
    """

    __slots__ = ("proc", "pipe")

    def __init__(self, proc: Any, pipe: Any) -> None:
        self.proc = proc
        self.pipe = pipe

    # -- messaging -------------------------------------------------------

    def send(self, obj: Any) -> None:
        """Pickle and send one command object."""
        self.pipe.send(obj)

    def send_bytes(self, buf: bytes) -> None:
        """Send an already-pickled command buffer (pickle-once scatter)."""
        self.pipe.send_bytes(buf)

    def recv(self) -> Any:
        """Receive one reply (raises ``EOFError`` on a dead worker)."""
        return self.pipe.recv()

    def poll(self) -> bool:
        """True when a reply is ready to :meth:`recv` without blocking."""
        return self.pipe.poll()

    def wait_objects(self) -> list:
        """Waitables for ``multiprocessing.connection.wait``: the reply
        channel plus the worker's death sentinel — a reply *or* a death
        wakes the supervisor, so no failure mode blocks forever."""
        return [self.pipe, self.proc.sentinel]

    # -- liveness --------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True while the worker process is running."""
        try:
            return self.proc.is_alive()
        except (OSError, ValueError):
            return False

    @property
    def pid(self) -> "int | None":
        """The worker's PID (None before start / after teardown races)."""
        return getattr(self.proc, "pid", None)

    @property
    def exitcode(self) -> "int | None":
        """The worker's exit code (None while it is still running)."""
        return getattr(self.proc, "exitcode", None)

    def join(self, timeout: "float | None" = None) -> None:
        """Wait for the worker to exit, swallowing teardown races."""
        try:
            self.proc.join(timeout)
        except (OSError, ValueError):
            pass

    # -- teardown --------------------------------------------------------

    def terminate_quietly(self) -> None:
        """Terminate and reap the worker, swallowing races (idempotent)."""
        try:
            if self.proc.is_alive():
                self.proc.terminate()
            self.proc.join(timeout=5.0)
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        """Close the master's end of the channel (idempotent)."""
        try:
            self.pipe.close()
        except OSError:
            pass

    def stop(self) -> None:
        """Full teardown: terminate the worker, then close the channel."""
        self.terminate_quietly()
        self.close()


class Transport:
    """How a pool bootstraps workers and reaches them.

    Subclasses implement :meth:`spawn`; everything else the pools do
    goes through the returned :class:`WorkerChannel`.  Register new
    transports in :data:`TRANSPORTS` (or via :func:`register_transport`)
    and select them by name — the engine/service/sharding layers carry
    the name, never the mechanics.
    """

    #: Registry key (subclasses override).
    name = "abstract"

    def spawn(
        self,
        target: Callable,
        args: Tuple = (),
        *,
        name: str,
        duplex: bool = True,
    ) -> WorkerChannel:
        """Start one worker running ``target(conn, *args)``.

        The transport constructs the channel endpoint handed to the
        worker as its first argument; the returned
        :class:`WorkerChannel` is the master's end.  ``duplex=False``
        gives a reply-only channel (the one-shot backend's shape).
        """
        raise NotImplementedError


class PipeTransport(Transport):
    """Local ``multiprocessing`` workers on duplex OS pipes (default).

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method; ``spawn`` (default) imports a
        fresh interpreter per worker — slower to start but immune to
        inherited locks/threads, and identical across platforms.
    """

    name = "pipe"

    def __init__(self, start_method: str = "spawn") -> None:
        if start_method not in mp.get_all_start_methods():
            raise ConfigurationError(
                f"start method {start_method!r} not available "
                f"(have {mp.get_all_start_methods()})"
            )
        self.start_method = start_method
        self._ctx = mp.get_context(start_method)

    def spawn(
        self,
        target: Callable,
        args: Tuple = (),
        *,
        name: str,
        duplex: bool = True,
    ) -> WorkerChannel:
        parent_conn, child_conn = self._ctx.Pipe(duplex=duplex)
        proc = self._ctx.Process(
            target=target,
            args=(child_conn, *args),
            name=name,
            daemon=True,
        )
        proc.start()
        # Drop the master's copy of the child end so a dead worker
        # reads as EOF/sentinel, never as an open idle pipe.
        child_conn.close()
        return WorkerChannel(proc, parent_conn)


#: Name → transport class.  ``pipe`` is the in-process default; a
#: socket transport slots in here without touching the pools.
TRANSPORTS: Dict[str, Type[Transport]] = {PipeTransport.name: PipeTransport}


def register_transport(cls: Type[Transport]) -> Type[Transport]:
    """Add ``cls`` to :data:`TRANSPORTS` under its ``name`` (decorator)."""
    TRANSPORTS[cls.name] = cls
    return cls


def make_transport(
    spec: "str | Transport", *, start_method: str = "spawn"
) -> Transport:
    """Resolve a transport: an instance passes through, a name is
    looked up in :data:`TRANSPORTS` and constructed with
    ``start_method``."""
    if isinstance(spec, Transport):
        return spec
    try:
        cls = TRANSPORTS[spec]
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown transport {spec!r} (have {sorted(TRANSPORTS)})"
        ) from None
    return cls(start_method=start_method)
