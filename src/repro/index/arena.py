"""Flat CSR fragment arena: the hot-path data layout.

The filtration/scoring kernels used to walk Python lists of small
per-peptide numpy arrays; at millions of entries the interpreter loop
and the per-array allocations dominate wall-clock time.  Following the
HiCOPS design (flat, cache-friendly arrays instead of per-peptide
objects), the arena stores one fragmentation setting's worth of
theoretical fragments for an entire entry set as a single immutable
CSR structure:

* ``mzs`` — one flat ``float64`` array holding every entry's fragment
  m/z values, entry-major, each entry's slice sorted ascending (the
  order :func:`~repro.chem.fragments.fragment_mzs` emits),
* ``offsets`` — ``int64``, length ``n_entries + 1``; entry ``i`` owns
  ``mzs[offsets[i] : offsets[i + 1]]``,
* per-resolution **bucket caches** — parallel ``int64`` arrays holding
  ``floor(mz / r)``, quantized once per resolution and shared by every
  index built over the arena,
* optional parallel per-entry metadata: ``lengths`` (residue counts,
  the scoring cost basis) and ``masses`` (float32 neutral masses, the
  precursor-filter input).

Consumers:

* :class:`~repro.index.slm.SLMIndex` builds its bucket-major CSR with
  one ``argsort`` over an arena bucket slice — no per-peptide loop,
  no transient list-of-arrays,
* :func:`~repro.search.scoring.score_candidates` gathers all candidate
  fragments with one vectorized range concatenation,
* :class:`~repro.search.engine.DistributedSearchEngine` carves
  per-rank sub-arenas with :meth:`FragmentArena.take` instead of
  rebuilding Python lists entry-by-entry.

Every path is bit-identical to the per-peptide-array layout it
replaced: the arena is exactly the concatenation of the old arrays,
so downstream float arithmetic sees the same operand sequences.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.chem.fragments import FragmentationSettings, fragment_mzs
from repro.chem.peptide import Peptide
from repro.errors import ConfigurationError

__all__ = ["FragmentArena", "Workspace", "concat_ranges", "thread_workspace"]


class Workspace:
    """Growable named scratch buffers for per-query kernels.

    The filtration/scoring hot loops need a handful of temporary
    arrays per spectrum (gather indices, credit vectors, prefix sums).
    Allocating them per call is measurable at volume; a workspace hands
    out views into persistent buffers that grow geometrically and are
    reused across calls.

    A view returned by :meth:`take` is valid only until the next
    :meth:`take` with the same name — callers must consume it before
    re-entering the kernel.  Workspaces are not thread-safe; use
    :func:`thread_workspace` for one per thread.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, str], np.ndarray] = {}

    def _grow(self, name: str, size: int, dtype, factory) -> np.ndarray:
        """Length-``size`` view of the named buffer, grown geometrically.

        ``factory(length, dtype=...)`` builds a replacement buffer when
        the cached one is absent or too small.
        """
        dt = np.dtype(dtype)
        key = (name, dt.str)
        buf = self._buffers.get(key)
        if buf is None or buf.size < size:
            grown = buf.size * 2 if buf is not None else 0
            buf = factory(max(size, grown, 1024), dtype=dt)
            self._buffers[key] = buf
        return buf[:size]

    def take(self, name: str, size: int, dtype) -> np.ndarray:
        """Return an uninitialized length-``size`` view named ``name``."""
        return self._grow(name, size, dtype, np.empty)

    def iota(self, size: int, dtype=np.int64) -> np.ndarray:
        """Read-only-by-convention view of ``[0, 1, ..., size - 1]``.

        Backed by a growable cached ``arange``: a prefix slice of a
        longer ascending run is still the ascending run, so growth
        never invalidates values and repeated kernel calls skip the
        O(n) sequence write.  Callers must not mutate the view.
        """
        return self._grow("__iota__", size, dtype, np.arange)


_tls = threading.local()


def thread_workspace() -> Workspace:
    """The calling thread's shared :class:`Workspace` (created lazily).

    Simulated MPI ranks run as threads, so kernel scratch must be
    thread-local; within a thread all indexes/scorers share one
    workspace (buffers grow to the largest request and stay warm).
    """
    ws = getattr(_tls, "workspace", None)
    if ws is None:
        ws = _tls.workspace = Workspace()
    return ws


def concat_ranges(
    starts: np.ndarray,
    stops: np.ndarray,
    *,
    workspace: Workspace | None = None,
    name: str = "concat_ranges",
) -> np.ndarray:
    """Concatenate integer ranges ``[starts[i], stops[i])`` — vectorized.

    Equivalent to ``np.concatenate([np.arange(a, b) for a, b in
    zip(starts, stops)])`` without the Python loop.  Built branch-free
    the way the batched filtration kernel builds its gather: position
    ``j`` of the output, falling in segment ``s``, equals
    ``(starts[s] - prefix[s]) + j`` where ``prefix`` is the exclusive
    prefix sum of the segment spans — so one ``repeat`` of the
    per-segment bases plus one ascending-iota add produce the whole
    index array.  The only cumulative sum left runs over the
    *segments*, not the output elements; dropping the element-wise
    serial cumsum dependency measures 1.2–3.7× faster across
    scoring-gather shapes (hundreds of candidate segments × tens of
    fragments each) and filtration windows alike.

    Empty ranges (``stops[i] <= starts[i]``) contribute nothing.

    The result is always a freshly allocated ``int64`` array (safe to
    keep across calls).  ``workspace`` supplies the cached ascending
    iota so repeated calls skip the O(n) sequence write; ``name`` is
    accepted for API compatibility but no longer selects a scratch
    buffer.
    """
    del name  # retained for API compatibility; result is always fresh
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    spans = stops - starts
    nonempty = spans > 0
    if not nonempty.all():
        starts, spans = starts[nonempty], spans[nonempty]
    total = int(spans.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    prefix = np.zeros(starts.size, dtype=np.int64)
    if starts.size > 1:
        np.cumsum(spans[:-1], out=prefix[1:])
    out = np.repeat(starts - prefix, spans)
    if workspace is not None:
        out += workspace.iota(total)
    else:
        out += np.arange(total, dtype=np.int64)
    return out


class FragmentArena:
    """Immutable CSR layout of an entry set's theoretical fragments.

    Parameters
    ----------
    mzs:
        Flat float64 fragment m/z array, entry-major.
    offsets:
        int64 CSR offsets, length ``n_entries + 1``.
    lengths:
        Optional int64 residue count per entry.
    masses:
        Optional float32 neutral mass per entry.
    """

    __slots__ = (
        "mzs",
        "offsets",
        "lengths",
        "masses",
        "_counts",
        "_views",
        "_bucket_cache",
        "_order_cache",
    )

    def __init__(
        self,
        mzs: np.ndarray,
        offsets: np.ndarray,
        *,
        lengths: np.ndarray | None = None,
        masses: np.ndarray | None = None,
    ) -> None:
        mzs = np.asarray(mzs, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size < 1 or int(offsets[0]) != 0:
            raise ConfigurationError("arena offsets must be 1-D and start at 0")
        if int(offsets[-1]) != mzs.size:
            raise ConfigurationError(
                f"arena offsets end at {int(offsets[-1])} but mzs holds {mzs.size}"
            )
        n = offsets.size - 1
        if lengths is not None and len(lengths) != n:
            raise ConfigurationError(f"{len(lengths)} lengths for {n} entries")
        if masses is not None and len(masses) != n:
            raise ConfigurationError(f"{len(masses)} masses for {n} entries")
        self.mzs = mzs
        self.offsets = offsets
        self.lengths = None if lengths is None else np.asarray(lengths, dtype=np.int64)
        self.masses = None if masses is None else np.asarray(masses, dtype=np.float32)
        self._counts: np.ndarray | None = None
        self._views: List[np.ndarray] | None = None
        self._bucket_cache: Dict[float, np.ndarray] = {}
        self._order_cache: Dict[float, np.ndarray] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def from_peptides(
        cls,
        peptides: Sequence[Peptide],
        fragmentation: FragmentationSettings = FragmentationSettings(),
    ) -> "FragmentArena":
        """Generate and flatten fragments for ``peptides`` (one pass)."""
        arrays = [fragment_mzs(p, fragmentation) for p in peptides]
        return cls.from_arrays(
            arrays,
            lengths=np.fromiter(
                (p.length for p in peptides), dtype=np.int64, count=len(peptides)
            ),
            masses=np.array([p.mass for p in peptides], dtype=np.float32),
        )

    @classmethod
    def from_arrays(
        cls,
        arrays: Sequence[np.ndarray],
        *,
        lengths: np.ndarray | None = None,
        masses: np.ndarray | None = None,
    ) -> "FragmentArena":
        """Flatten precomputed per-entry fragment arrays into an arena."""
        n = len(arrays)
        offsets = np.zeros(n + 1, dtype=np.int64)
        if n:
            np.cumsum([a.size for a in arrays], out=offsets[1:])
            mzs = np.concatenate(arrays) if offsets[-1] else np.empty(0, dtype=np.float64)
        else:
            mzs = np.empty(0, dtype=np.float64)
        return cls(mzs, offsets, lengths=lengths, masses=masses)

    # -- introspection --------------------------------------------------

    @property
    def n_entries(self) -> int:
        """Number of entries the arena covers."""
        return self.offsets.size - 1

    @property
    def n_ions(self) -> int:
        """Total fragments stored."""
        return self.mzs.size

    @property
    def counts(self) -> np.ndarray:
        """Fragments per entry (int64, length ``n_entries``); cached."""
        if self._counts is None:
            self._counts = np.diff(self.offsets)
        return self._counts

    @property
    def nbytes(self) -> int:
        """Resident bytes: flat arrays, metadata, and bucket caches."""
        total = self.mzs.nbytes + self.offsets.nbytes
        if self.lengths is not None:
            total += self.lengths.nbytes
        if self.masses is not None:
            total += self.masses.nbytes
        for cached in self._bucket_cache.values():
            total += cached.nbytes
        for cached in self._order_cache.values():
            total += cached.nbytes
        return total

    def fragments_of(self, entry_id: int) -> np.ndarray:
        """Zero-copy view of entry ``entry_id``'s fragment m/z values."""
        return self.mzs[self.offsets[entry_id] : self.offsets[entry_id + 1]]

    def views(self) -> List[np.ndarray]:
        """Per-entry zero-copy views (the legacy list-of-arrays shape).

        Cached so repeated callers share one list object; the views
        alias :attr:`mzs`, so no fragment data is duplicated.
        """
        if self._views is None:
            self._views = [self.fragments_of(i) for i in range(self.n_entries)]
        return self._views

    # -- quantization ---------------------------------------------------

    def buckets_for(self, resolution: float) -> np.ndarray:
        """Flat ``floor(mz / resolution)`` array, quantized once per resolution.

        Uses the same ``mz * (1 / r)`` arithmetic as the original
        per-peptide quantization, so bucket ids are bit-identical.
        """
        cached = self._bucket_cache.get(resolution)
        if cached is None:
            inv_r = 1.0 / resolution
            cached = np.floor(self.mzs * inv_r).astype(np.int64)
            self._bucket_cache[resolution] = cached
        return cached

    def drop_quantization_caches(self) -> None:
        """Free the per-resolution bucket/sort-order caches.

        Call once no more indexes will be built over this arena (e.g.
        a rank's sub-arena after its partial-index build): the flat
        m/z data — all scoring needs — stays, but the 16 B/ion of
        cached int64 quantization state is released.
        """
        self._bucket_cache.clear()
        self._order_cache.clear()

    def sort_order_for(self, resolution: float) -> np.ndarray:
        """Stable bucket-major sort order of the arena's ions, cached.

        This is the argsort every :class:`~repro.index.slm.SLMIndex`
        over this arena needs at ``resolution``; it depends only on the
        immutable fragment data, so repeated index builds (the serial
        engine across a policy sweep, benchmark repetitions) pay for
        the sort once.

        For a sub-arena carved with :meth:`take` from a master whose
        order was already cached, the cached entry is *derived* from
        the master order instead of re-argsorted.  The derived order is
        bucket-major, but ions tied within one bucket follow **master**
        arena position rather than sub-arena position; when the
        ``take`` manifest is ascending the two coincide exactly with a
        fresh stable argsort.  Per-bucket ion order is unobservable
        downstream — filtration reduces parent ids with order-
        independent integer counting, and scoring gathers fragments by
        candidate id, never through the CSR — so every
        :class:`~repro.index.slm.FilterResult` and score is
        bit-identical either way.
        """
        cached = self._order_cache.get(resolution)
        if cached is None:
            cached = np.argsort(self.buckets_for(resolution), kind="stable")
            self._order_cache[resolution] = cached
        return cached

    # -- selection ------------------------------------------------------

    def take(self, entry_ids: np.ndarray) -> "FragmentArena":
        """Sub-arena of ``entry_ids`` (in the given order), one gather.

        Per-entry metadata travels along, and any already-quantized
        bucket caches are gathered too, so ranks never re-quantize.
        Cached bucket-major sort orders are *derived* as well — a
        membership filter over the master order plus an id remap —
        so a rank's partial-index build never re-argsorts its ion
        subset (see :meth:`sort_order_for` for the tie-order caveat).
        """
        ids = np.asarray(entry_ids, dtype=np.int64)
        starts = self.offsets[ids]
        stops = self.offsets[ids + 1]
        new_offsets = np.zeros(ids.size + 1, dtype=np.int64)
        np.cumsum(stops - starts, out=new_offsets[1:])
        idx = concat_ranges(starts, stops)
        sub = FragmentArena(
            self.mzs[idx],
            new_offsets,
            lengths=None if self.lengths is None else self.lengths[ids],
            masses=None if self.masses is None else self.masses[ids],
        )
        for resolution, buckets in self._bucket_cache.items():
            sub._bucket_cache[resolution] = buckets[idx]
        # Duplicate entry ids would make the position remap ambiguous
        # (and no engine manifest repeats an entry); only then fall
        # back to the sub-arena argsorting on demand.
        if self._order_cache and ids.size and np.unique(ids).size == ids.size:
            member = np.zeros(self.n_ions, dtype=bool)
            member[idx] = True
            new_pos = np.empty(self.n_ions, dtype=np.int64)
            new_pos[idx] = np.arange(idx.size, dtype=np.int64)
            for resolution, order in self._order_cache.items():
                # Master order restricted to the kept ions is already
                # bucket-major; remapping to sub positions preserves
                # that grouping.
                kept = order[member[order]]
                sub._order_cache[resolution] = new_pos[kept]
        return sub

    def gather_flat(
        self, entry_ids: np.ndarray, *, workspace: Workspace | None = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(flat_mzs, sizes)`` over ``entry_ids`` — the scoring gather.

        ``flat_mzs`` is the concatenation of each id's fragment slice
        (duplicate ids allowed); ``sizes`` the per-id fragment counts.
        With ``workspace`` the flat array is a scratch view.
        """
        ids = np.asarray(entry_ids, dtype=np.int64)
        starts = self.offsets[ids]
        stops = self.offsets[ids + 1]
        sizes = stops - starts
        idx = concat_ranges(starts, stops, workspace=workspace, name="arena.gather")
        if workspace is not None:
            flat = workspace.take("arena.gather.mzs", idx.size, np.float64)
            np.take(self.mzs, idx, out=flat)
        else:
            flat = self.mzs[idx]
        return flat, sizes
