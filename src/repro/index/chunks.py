"""Shared-memory index chunking (paper Fig. 1).

When an index outgrows memory (or the 2-billion-ion ``int`` limit of
the C++ original, Section III-D), shared-memory engines sort peptide
entries by precursor mass and split them into bounded chunks; similar
(near-isobaric) reference data then live contiguously in exactly one
chunk, so a precursor-windowed query touches few chunks.

:class:`ChunkedIndex` reproduces that scheme on top of
:class:`~repro.index.slm.SLMIndex`.  For open searches every chunk must
be visited (which is why the paper disables internal partitioning in
its open-search experiments); for windowed searches the chunk list is
pruned by precursor mass, and the pruning is observable through the
work counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.chem.peptide import Peptide
from repro.errors import ConfigurationError
from repro.index.slm import FilterResult, SLMIndex, SLMIndexSettings
from repro.spectra.model import Spectrum

__all__ = ["ChunkingConfig", "ChunkedIndex"]


@dataclass(frozen=True, slots=True)
class ChunkingConfig:
    """Chunking parameters.

    Attributes
    ----------
    max_peptides_per_chunk:
        Upper bound on peptides per chunk (the analogue of the 10.5 M
        spectra per-process limit in Section V-B).
    """

    max_peptides_per_chunk: int = 100_000

    def __post_init__(self) -> None:
        if self.max_peptides_per_chunk < 1:
            raise ConfigurationError(
                "max_peptides_per_chunk must be >= 1, got "
                f"{self.max_peptides_per_chunk}"
            )


class ChunkedIndex:
    """Precursor-mass-sorted, chunked collection of SLM indexes.

    Parameters
    ----------
    peptides:
        Peptides to index; re-sorted by neutral mass internally.
    settings:
        Per-chunk SLM settings.
    chunking:
        Chunk size bound.

    Notes
    -----
    ``local_to_input[i]`` maps the chunked ordering back to positions
    in the constructor's ``peptides`` sequence, so filtration results
    can be reported in the caller's id space.

    ``chunk_mass_ranges`` holds the float32-rounded mass extrema of
    each chunk (widened to float64) — the *same* rounded masses the
    per-chunk :class:`~repro.index.slm.SLMIndex` stores and masks with,
    so chunk pruning and the inner precursor-window filter agree at
    window boundaries (float32 rounding is monotone, hence the rounded
    min/max are the min/max of the rounded masses).
    """

    def __init__(
        self,
        peptides: Sequence[Peptide],
        settings: SLMIndexSettings = SLMIndexSettings(),
        chunking: ChunkingConfig = ChunkingConfig(),
    ) -> None:
        self.settings = settings
        self.chunking = chunking
        masses = np.array([p.mass for p in peptides], dtype=np.float64)
        order = np.argsort(masses, kind="stable")
        self.local_to_input = order.astype(np.int64)
        sorted_peps = [peptides[i] for i in order]

        size = chunking.max_peptides_per_chunk
        self.chunks: List[SLMIndex] = []
        self.chunk_mass_ranges: List[tuple[float, float]] = []
        self._chunk_starts: List[int] = []
        for start in range(0, len(sorted_peps), size):
            block = sorted_peps[start : start + size]
            self.chunks.append(SLMIndex(block, settings))
            self.chunk_mass_ranges.append(
                (
                    float(np.float32(block[0].mass)),
                    float(np.float32(block[-1].mass)),
                )
            )
            self._chunk_starts.append(start)

    def __len__(self) -> int:
        return int(self.local_to_input.size)

    @property
    def n_chunks(self) -> int:
        """Number of chunks."""
        return len(self.chunks)

    def chunks_for(self, spectrum: Spectrum) -> List[int]:
        """Chunk indices that may hold candidates for ``spectrum``.

        Open search → all chunks.  Windowed search → chunks whose mass
        range may intersect ``neutral_mass ± ΔM``.

        Pruning is evaluated in float64 over the float32-rounded chunk
        extrema, with the *difference-form* predicate the inner filter
        uses (``|mass - neutral| <= tol``).  Because float subtraction
        against a fixed ``neutral`` is monotone in ``mass``, a chunk is
        pruned only when every member's ``mass - neutral`` provably
        falls outside ``[-tol, tol]`` — so pruning can never drop a
        peptide the flat index would keep, and chunked filtration stays
        bit-identical to the flat index even exactly at window
        boundaries.
        """
        if self.settings.is_open_search:
            return list(range(self.n_chunks))
        tol = float(self.settings.precursor_tolerance)  # type: ignore[arg-type]
        nm = spectrum.neutral_mass
        return [
            i
            for i, (mmin, mmax) in enumerate(self.chunk_mass_ranges)
            if mmax - nm >= -tol and mmin - nm <= tol
        ]

    def filter(self, spectrum: Spectrum) -> FilterResult:
        """Filtration across (relevant) chunks, ids in input space."""
        cand_parts: List[np.ndarray] = []
        count_parts: List[np.ndarray] = []
        buckets = 0
        ions = 0
        for ci in self.chunks_for(spectrum):
            res = self.chunks[ci].filter(spectrum)
            if res.candidates.size:
                globl = self.local_to_input[res.candidates + self._chunk_starts[ci]]
                cand_parts.append(globl.astype(np.int32))
                count_parts.append(res.shared_peaks)
            buckets += res.buckets_scanned
            ions += res.ions_scanned
        return self._assemble(cand_parts, count_parts, buckets, ions)

    def filter_many(
        self,
        spectra: Sequence[Spectrum],
        *,
        max_batch_keys: int | None = None,
        workspace=None,
    ) -> List[FilterResult]:
        """Batched filtration across chunks: one result per spectrum.

        Spectra are grouped by the chunks their precursor windows prune
        to, each chunk runs the cross-spectrum batched kernel over the
        spectra that reach it, and per-spectrum parts are re-assembled
        in ascending chunk order — exactly the order :meth:`filter`
        visits chunks in, so results are bit-identical to per-spectrum
        calls.
        """
        spectra = list(spectra)
        kwargs = {} if max_batch_keys is None else {"max_batch_keys": max_batch_keys}
        by_chunk: List[List[int]] = [[] for _ in range(self.n_chunks)]
        for si, s in enumerate(spectra):
            for ci in self.chunks_for(s):
                by_chunk[ci].append(si)

        cand_parts: List[List[np.ndarray]] = [[] for _ in spectra]
        count_parts: List[List[np.ndarray]] = [[] for _ in spectra]
        buckets = [0] * len(spectra)
        ions = [0] * len(spectra)
        for ci, sel in enumerate(by_chunk):
            if not sel:
                continue
            chunk_results = self.chunks[ci].filter_many(
                [spectra[si] for si in sel], workspace=workspace, **kwargs
            )
            for si, res in zip(sel, chunk_results):
                buckets[si] += res.buckets_scanned
                ions[si] += res.ions_scanned
                if res.candidates.size:
                    globl = self.local_to_input[
                        res.candidates + self._chunk_starts[ci]
                    ]
                    cand_parts[si].append(globl.astype(np.int32))
                    count_parts[si].append(res.shared_peaks)
        return [
            self._assemble(cand_parts[si], count_parts[si], buckets[si], ions[si])
            for si in range(len(spectra))
        ]

    def _assemble(
        self,
        cand_parts: List[np.ndarray],
        count_parts: List[np.ndarray],
        buckets: int,
        ions: int,
    ) -> FilterResult:
        """Merge per-chunk candidate parts (chunk order) into input-id space."""
        if cand_parts:
            candidates = np.concatenate(cand_parts)
            shared = np.concatenate(count_parts)
            order = np.argsort(candidates, kind="stable")
            candidates, shared = candidates[order], shared[order]
        else:
            candidates = np.empty(0, dtype=np.int32)
            shared = np.empty(0, dtype=np.int32)
        return FilterResult(
            candidates=candidates,
            shared_peaks=shared,
            buckets_scanned=buckets,
            ions_scanned=ions,
        )
