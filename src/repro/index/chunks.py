"""Shared-memory index chunking (paper Fig. 1).

When an index outgrows memory (or the 2-billion-ion ``int`` limit of
the C++ original, Section III-D), shared-memory engines sort peptide
entries by precursor mass and split them into bounded chunks; similar
(near-isobaric) reference data then live contiguously in exactly one
chunk, so a precursor-windowed query touches few chunks.

:class:`ChunkedIndex` reproduces that scheme on top of
:class:`~repro.index.slm.SLMIndex`.  For open searches every chunk must
be visited (which is why the paper disables internal partitioning in
its open-search experiments); for windowed searches the chunk list is
pruned by precursor mass, and the pruning is observable through the
work counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.chem.peptide import Peptide
from repro.errors import ConfigurationError
from repro.index.slm import FilterResult, SLMIndex, SLMIndexSettings
from repro.spectra.model import Spectrum

__all__ = ["ChunkingConfig", "ChunkedIndex"]


@dataclass(frozen=True, slots=True)
class ChunkingConfig:
    """Chunking parameters.

    Attributes
    ----------
    max_peptides_per_chunk:
        Upper bound on peptides per chunk (the analogue of the 10.5 M
        spectra per-process limit in Section V-B).
    """

    max_peptides_per_chunk: int = 100_000

    def __post_init__(self) -> None:
        if self.max_peptides_per_chunk < 1:
            raise ConfigurationError(
                "max_peptides_per_chunk must be >= 1, got "
                f"{self.max_peptides_per_chunk}"
            )


class ChunkedIndex:
    """Precursor-mass-sorted, chunked collection of SLM indexes.

    Parameters
    ----------
    peptides:
        Peptides to index; re-sorted by neutral mass internally.
    settings:
        Per-chunk SLM settings.
    chunking:
        Chunk size bound.

    Notes
    -----
    ``local_to_input[i]`` maps the chunked ordering back to positions
    in the constructor's ``peptides`` sequence, so filtration results
    can be reported in the caller's id space.
    """

    def __init__(
        self,
        peptides: Sequence[Peptide],
        settings: SLMIndexSettings = SLMIndexSettings(),
        chunking: ChunkingConfig = ChunkingConfig(),
    ) -> None:
        self.settings = settings
        self.chunking = chunking
        masses = np.array([p.mass for p in peptides], dtype=np.float64)
        order = np.argsort(masses, kind="stable")
        self.local_to_input = order.astype(np.int64)
        sorted_peps = [peptides[i] for i in order]

        size = chunking.max_peptides_per_chunk
        self.chunks: List[SLMIndex] = []
        self.chunk_mass_ranges: List[tuple[float, float]] = []
        self._chunk_starts: List[int] = []
        for start in range(0, len(sorted_peps), size):
            block = sorted_peps[start : start + size]
            self.chunks.append(SLMIndex(block, settings))
            self.chunk_mass_ranges.append((block[0].mass, block[-1].mass))
            self._chunk_starts.append(start)

    def __len__(self) -> int:
        return int(self.local_to_input.size)

    @property
    def n_chunks(self) -> int:
        """Number of chunks."""
        return len(self.chunks)

    def chunks_for(self, spectrum: Spectrum) -> List[int]:
        """Chunk indices that may hold candidates for ``spectrum``.

        Open search → all chunks.  Windowed search → chunks whose mass
        range intersects ``neutral_mass ± ΔM``.
        """
        if self.settings.is_open_search:
            return list(range(self.n_chunks))
        tol = float(self.settings.precursor_tolerance)  # type: ignore[arg-type]
        lo = spectrum.neutral_mass - tol
        hi = spectrum.neutral_mass + tol
        return [
            i
            for i, (mmin, mmax) in enumerate(self.chunk_mass_ranges)
            if mmax >= lo and mmin <= hi
        ]

    def filter(self, spectrum: Spectrum) -> FilterResult:
        """Filtration across (relevant) chunks, ids in input space."""
        cand_parts: List[np.ndarray] = []
        count_parts: List[np.ndarray] = []
        buckets = 0
        ions = 0
        for ci in self.chunks_for(spectrum):
            res = self.chunks[ci].filter(spectrum)
            if res.candidates.size:
                globl = self.local_to_input[res.candidates + self._chunk_starts[ci]]
                cand_parts.append(globl.astype(np.int32))
                count_parts.append(res.shared_peaks)
            buckets += res.buckets_scanned
            ions += res.ions_scanned
        if cand_parts:
            candidates = np.concatenate(cand_parts)
            shared = np.concatenate(count_parts)
            order = np.argsort(candidates, kind="stable")
            candidates, shared = candidates[order], shared[order]
        else:
            candidates = np.empty(0, dtype=np.int32)
            shared = np.empty(0, dtype=np.int32)
        return FilterResult(
            candidates=candidates,
            shared_peaks=shared,
            buckets_scanned=buckets,
            ions_scanned=ions,
        )
