"""Index persistence: save/load SLM indexes as ``.npz`` archives.

The shared-memory scheme of the paper's Fig. 1 assumes chunks "may be
stored on disks when not in use"; the distributed engine likewise
benefits from building partial indexes once and reloading them per
run.  The archive stores the numpy structures verbatim plus the
peptide table (sequences, modifications, protein ids) and the settings
needed to validate compatibility on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.chem.fragments import FragmentationSettings
from repro.chem.peptide import Peptide
from repro.errors import FormatError
from repro.index.slm import SLMIndex, SLMIndexSettings

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1


def _settings_payload(settings: SLMIndexSettings) -> str:
    frag = settings.fragmentation
    return json.dumps(
        {
            "version": _FORMAT_VERSION,
            "resolution": settings.resolution,
            "fragment_tolerance": settings.fragment_tolerance,
            "shared_peak_threshold": settings.shared_peak_threshold,
            "precursor_tolerance": settings.precursor_tolerance,
            "charges": list(frag.charges),
            "include_b": frag.include_b,
            "include_y": frag.include_y,
        }
    )


def _settings_from_payload(payload: str) -> SLMIndexSettings:
    data = json.loads(payload)
    if data.get("version") != _FORMAT_VERSION:
        raise FormatError(
            f"unsupported index archive version {data.get('version')!r}"
        )
    return SLMIndexSettings(
        resolution=data["resolution"],
        fragment_tolerance=data["fragment_tolerance"],
        shared_peak_threshold=data["shared_peak_threshold"],
        precursor_tolerance=data["precursor_tolerance"],
        fragmentation=FragmentationSettings(
            charges=tuple(data["charges"]),
            include_b=data["include_b"],
            include_y=data["include_y"],
        ),
    )


def save_index(path: Union[str, Path], index: SLMIndex) -> Path:
    """Serialize ``index`` to ``path`` (``.npz``); returns the path.

    Peptide modifications are flattened into three parallel arrays
    (owner peptide, position, delta) so the archive stays pure-numpy.
    """
    path = Path(path)
    sequences = np.array([p.sequence for p in index.peptides], dtype="U64")
    protein_ids = np.array([p.protein_id for p in index.peptides], dtype=np.int64)
    mod_owner: List[int] = []
    mod_pos: List[int] = []
    mod_delta: List[float] = []
    for local_id, pep in enumerate(index.peptides):
        for pos, delta in pep.mods:
            mod_owner.append(local_id)
            mod_pos.append(pos)
            mod_delta.append(delta)
    np.savez_compressed(
        path,
        settings=np.array(_settings_payload(index.settings)),
        sequences=sequences,
        protein_ids=protein_ids,
        mod_owner=np.asarray(mod_owner, dtype=np.int64),
        mod_pos=np.asarray(mod_pos, dtype=np.int64),
        mod_delta=np.asarray(mod_delta, dtype=np.float64),
        ion_parents=index.ion_parents,
        bucket_offsets=index.bucket_offsets,
        masses=index.masses,
    )
    return path


def load_index(path: Union[str, Path]) -> SLMIndex:
    """Load an index archive written by :func:`save_index`.

    The numpy structures are restored verbatim (no fragment
    regeneration), so loading is fast and bit-exact: a loaded index
    filters identically to the one that was saved.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        try:
            settings = _settings_from_payload(str(data["settings"]))
            sequences = data["sequences"]
            protein_ids = data["protein_ids"]
            mod_owner = data["mod_owner"]
            mod_pos = data["mod_pos"]
            mod_delta = data["mod_delta"]
            ion_parents = data["ion_parents"]
            bucket_offsets = data["bucket_offsets"]
            masses = data["masses"]
        except KeyError as missing:
            raise FormatError(f"index archive missing field {missing}") from None

    mods_by_owner: dict[int, List[tuple[int, float]]] = {}
    for owner, pos, delta in zip(mod_owner, mod_pos, mod_delta):
        mods_by_owner.setdefault(int(owner), []).append((int(pos), float(delta)))
    peptides = [
        Peptide(
            str(seq),
            tuple(mods_by_owner.get(i, ())),
            protein_id=int(pid),
        )
        for i, (seq, pid) in enumerate(zip(sequences, protein_ids))
    ]

    # Rebuild the object around the stored arrays without recomputing.
    index = SLMIndex.__new__(SLMIndex)
    index.settings = settings
    index.peptides = peptides
    index.masses = masses
    index.arena = None  # archives predate/omit the arena; queries don't need it
    index._ion_counts = None  # recovered lazily from ion_parents on demand
    index._masses64 = None  # widened lazily on the first windowed query
    index.ion_parents = ion_parents
    index.bucket_offsets = bucket_offsets
    index.n_buckets = int(bucket_offsets.size - 1)
    return index
