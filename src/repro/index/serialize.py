"""Index persistence: save/load SLM indexes as ``.npz`` archives.

The shared-memory scheme of the paper's Fig. 1 assumes chunks "may be
stored on disks when not in use"; the distributed engine likewise
benefits from building partial indexes once and reloading them per
run.  The archive stores the numpy structures verbatim plus the
peptide table (sequences, modifications, protein ids) and the settings
needed to validate compatibility on load.

Zero-copy loading
-----------------
``load_index(path, mmap_mode="r")`` opens the big flat arrays
(``ion_parents``, ``bucket_offsets``, ``masses``) as read-only
``np.memmap`` views straight into the archive instead of copying them
into private memory — N processes loading the same archive then share
one physical copy through the OS page cache.  This requires an
**uncompressed** archive (``save_index(..., compress=False)``); numpy
itself ignores ``mmap_mode`` for zip archives, so the member regions
are located via the zip directory and mapped directly.

Relation to :class:`~repro.parallel.shared_arena.SharedArenaStore`:
the arena store shares the *fragment arena* (pre-index m/z data, the
input every worker carves its partition from) as a directory of raw
``.npy`` files, while this module shares a *built index* (the
post-construction CSR) as a single archive.  Both converge on the same
memory model — read-only flat arrays, one page-cache copy per machine
however many processes map them.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.chem.fragments import FragmentationSettings
from repro.chem.peptide import Peptide
from repro.errors import ConfigurationError, FormatError
from repro.index.slm import SLMIndex, SLMIndexSettings

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1

#: Archive members eligible for memory-mapping (the flat query-path
#: arrays; everything else is small object/bookkeeping data).
_MMAP_FIELDS = ("ion_parents", "bucket_offsets", "masses")


def _settings_payload(settings: SLMIndexSettings) -> str:
    frag = settings.fragmentation
    return json.dumps(
        {
            "version": _FORMAT_VERSION,
            "resolution": settings.resolution,
            "fragment_tolerance": settings.fragment_tolerance,
            "shared_peak_threshold": settings.shared_peak_threshold,
            "precursor_tolerance": settings.precursor_tolerance,
            "charges": list(frag.charges),
            "include_b": frag.include_b,
            "include_y": frag.include_y,
        }
    )


def _settings_from_payload(payload: str) -> SLMIndexSettings:
    data = json.loads(payload)
    if data.get("version") != _FORMAT_VERSION:
        raise FormatError(
            f"unsupported index archive version {data.get('version')!r}"
        )
    return SLMIndexSettings(
        resolution=data["resolution"],
        fragment_tolerance=data["fragment_tolerance"],
        shared_peak_threshold=data["shared_peak_threshold"],
        precursor_tolerance=data["precursor_tolerance"],
        fragmentation=FragmentationSettings(
            charges=tuple(data["charges"]),
            include_b=data["include_b"],
            include_y=data["include_y"],
        ),
    )


def save_index(
    path: Union[str, Path], index: SLMIndex, *, compress: bool = True
) -> Path:
    """Serialize ``index`` to ``path`` (``.npz``); returns the path.

    Peptide modifications are flattened into three parallel arrays
    (owner peptide, position, delta) so the archive stays pure-numpy.
    ``compress=False`` writes an uncompressed archive — larger on
    disk, but the only layout :func:`load_index` can memory-map.
    """
    path = Path(path)
    if index.peptides is None:
        raise ConfigurationError(
            "cannot serialize a peptide-free index (built from an arena "
            "with peptides=None); archives store the peptide table"
        )
    sequences = np.array([p.sequence for p in index.peptides], dtype="U64")
    protein_ids = np.array([p.protein_id for p in index.peptides], dtype=np.int64)
    mod_owner: List[int] = []
    mod_pos: List[int] = []
    mod_delta: List[float] = []
    for local_id, pep in enumerate(index.peptides):
        for pos, delta in pep.mods:
            mod_owner.append(local_id)
            mod_pos.append(pos)
            mod_delta.append(delta)
    savez = np.savez_compressed if compress else np.savez
    savez(
        path,
        settings=np.array(_settings_payload(index.settings)),
        sequences=sequences,
        protein_ids=protein_ids,
        mod_owner=np.asarray(mod_owner, dtype=np.int64),
        mod_pos=np.asarray(mod_pos, dtype=np.int64),
        mod_delta=np.asarray(mod_delta, dtype=np.float64),
        ion_parents=index.ion_parents,
        bucket_offsets=index.bucket_offsets,
        masses=index.masses,
    )
    return path


def _mmap_npz_member(
    path: Path, zf: zipfile.ZipFile, member: str, mmap_mode: str
) -> np.memmap:
    """Memory-map one stored ``.npy`` member of an ``.npz`` archive.

    Locates the member's raw bytes inside the zip (local file header +
    npy header), then maps the data region of the archive file
    directly — no decompression, no copy.  Only ``ZIP_STORED`` members
    can be mapped; compressed members raise :class:`FormatError`.
    """
    info = zf.getinfo(member)
    if info.compress_type != zipfile.ZIP_STORED:
        raise FormatError(
            f"archive member {member!r} is compressed and cannot be "
            "memory-mapped; write the archive with "
            "save_index(..., compress=False)"
        )
    with open(path, "rb") as f:
        # The central directory's header_offset points at the local
        # file header; its name/extra lengths may differ from the
        # central record's, so read them from the local header itself.
        f.seek(info.header_offset)
        local = f.read(30)
        if len(local) != 30 or local[:4] != b"PK\x03\x04":
            raise FormatError(f"corrupt local header for member {member!r}")
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        f.seek(info.header_offset + 30 + name_len + extra_len)
        version = np.lib.format.read_magic(f)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(f)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(f)
        else:
            raise FormatError(
                f"unsupported npy format version {version} in {member!r}"
            )
        data_offset = f.tell()
    return np.memmap(
        path,
        dtype=dtype,
        mode=mmap_mode,
        offset=data_offset,
        shape=shape,
        order="F" if fortran else "C",
    )


def load_index(
    path: Union[str, Path], *, mmap_mode: str | None = None
) -> SLMIndex:
    """Load an index archive written by :func:`save_index`.

    The numpy structures are restored verbatim (no fragment
    regeneration), so loading is fast and bit-exact: a loaded index
    filters identically to the one that was saved.

    Parameters
    ----------
    path:
        The ``.npz`` archive.
    mmap_mode:
        ``None`` (default) copies every array into private memory.
        ``"r"`` (read-only) or ``"c"`` (copy-on-write) memory-map the
        flat query-path arrays (``ion_parents``, ``bucket_offsets``,
        ``masses``) directly from the archive: loading is O(metadata),
        pages fault in on first touch, and concurrent processes share
        one physical copy — the same model
        :class:`~repro.parallel.shared_arena.SharedArenaStore` applies
        to the fragment arena.  Requires an archive written with
        ``compress=False``; raises :class:`FormatError` otherwise.
    """
    path = Path(path)
    if mmap_mode not in (None, "r", "c"):
        raise ConfigurationError(
            f"mmap_mode must be None, 'r', or 'c', got {mmap_mode!r}"
        )
    with np.load(path, allow_pickle=False) as data:
        try:
            settings = _settings_from_payload(str(data["settings"]))
            sequences = data["sequences"]
            protein_ids = data["protein_ids"]
            mod_owner = data["mod_owner"]
            mod_pos = data["mod_pos"]
            mod_delta = data["mod_delta"]
            if mmap_mode is None:
                ion_parents = data["ion_parents"]
                bucket_offsets = data["bucket_offsets"]
                masses = data["masses"]
        except KeyError as missing:
            raise FormatError(f"index archive missing field {missing}") from None

    if mmap_mode is not None:
        with zipfile.ZipFile(path) as zf:
            members = set(zf.namelist())
            arrays = {}
            for field in _MMAP_FIELDS:
                member = field + ".npy"
                if member not in members:
                    raise FormatError(f"index archive missing field '{field}'")
                arrays[field] = _mmap_npz_member(path, zf, member, mmap_mode)
        ion_parents = arrays["ion_parents"]
        bucket_offsets = arrays["bucket_offsets"]
        masses = arrays["masses"]

    mods_by_owner: dict[int, List[tuple[int, float]]] = {}
    for owner, pos, delta in zip(mod_owner, mod_pos, mod_delta):
        mods_by_owner.setdefault(int(owner), []).append((int(pos), float(delta)))
    peptides = [
        Peptide(
            str(seq),
            tuple(mods_by_owner.get(i, ())),
            protein_id=int(pid),
        )
        for i, (seq, pid) in enumerate(zip(sequences, protein_ids))
    ]

    # Rebuild the object around the stored arrays without recomputing.
    index = SLMIndex.__new__(SLMIndex)
    index.settings = settings
    index.peptides = peptides
    index.n_peptides = len(peptides)
    index.masses = masses
    index.arena = None  # archives predate/omit the arena; queries don't need it
    index._ion_counts = None  # recovered lazily from ion_parents on demand
    index._masses64 = None  # widened lazily on the first windowed query
    index.ion_parents = ion_parents
    index.bucket_offsets = bucket_offsets
    index.n_buckets = int(bucket_offsets.size - 1)
    return index
