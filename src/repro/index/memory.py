"""Index memory accounting (paper Fig. 5 and Section V-B).

Fig. 5 compares the memory footprint of the shared-memory SLM index
against the LBE-distributed version for index sizes up to ~50 M
entries.  We reproduce it with a byte-accurate *structural* model of
the C++ original's layout, cross-validated (in tests) against the
``nbytes`` of our own numpy structures:

* ion entries: 4 bytes each (int32 parent id) — matches the original's
  "2 billion ions = 8 GB" remark (Section III-D),
* bucket-offset array: ``(max_mz / r + 1) * 8`` bytes **per index
  instance** — this is the term that is *replicated on every rank* in
  the distributed version and therefore shrinks in relative terms as
  partitions grow ("the extra memory overhead varies inversely with
  the size of data partition per MPI CPU", Section V-B),
* peptide table: sequence bytes + float32 mass + int32 bookkeeping per
  entry,
* master mapping table: one int32 per entry (distributed only),
* transient build overhead: the bucket-major sort holds the unsorted
  flat bucket/parent arrays alongside the final ones → 2× ion bytes
  during build (eliminated when internal chunking is enabled, because
  chunks are built one at a time).

Separately from the C++-layout terms above (which drop fragment m/z
values after quantization), our reproduction retains a host-side
**fragment arena** (:mod:`repro.index.arena`): one flat float64 m/z
array plus int64 CSR offsets and one pre-quantized int64 bucket array
per resolution, shared by every engine over a database.  It replaces
the old per-peptide list-of-arrays fragment cache — same payload
bytes, but without the ~56-byte-per-entry numpy object headers and the
list slots.  :meth:`IndexMemoryModel.arena_bytes` models it and
:meth:`IndexMemoryModel.measure_arena` checks the model against a live
arena; it is *not* part of the Fig. 5 comparison, which models the
original's layout.

Shared-arena (multi-process) memory model
-----------------------------------------
Under the real-process backend (:mod:`repro.parallel`) the arena is
spilled once to a
:class:`~repro.parallel.shared_arena.SharedArenaStore` and every
worker reopens it with read-only ``np.memmap``:

* the spilled flat arrays exist as **one physical copy** machine-wide
  — the OS page cache backs every worker's mapping, so the arena term
  does *not* multiply by the worker count the way pickled-per-worker
  clones would,
* a worker's page-cache **residency** is only the pages it touches:
  carving its :meth:`~repro.index.arena.FragmentArena.take` sub-arena
  reads just its manifest's slices, so cold pages of other ranks'
  entries never fault in,
* each worker's *private* (unique) bytes are its gathered sub-arena —
  O(arena / n_workers) — plus its partial index, exactly the
  distributed per-rank share :meth:`IndexMemoryModel.distributed`
  models.

System-wide under the process backend: ``arena_bytes`` (the shared
copy, counted once) + Σ per-worker sub-arena m/z (≈ 8 B × n_ions
total across workers) + the per-rank index terms.  The same model
applies to ``.npz`` archives opened with
:func:`repro.index.serialize.load_index` ``(mmap_mode="r")``.

Service residency (persistent sessions)
---------------------------------------
The persistent service (:mod:`repro.service`) changes *durations*,
not *terms*:

* the **arena spill is shared machine-wide and refcounted**: every
  engine and service session over one database holds the same
  :class:`~repro.parallel.shared_arena.SharedSpill` handle (one
  tmpdir, one physical page-cache copy), removed when the last holder
  is garbage-collected — N concurrent sessions still count
  ``arena_bytes`` once,
* each worker's **private bytes are unchanged** at O(arena/n_workers)
  — the ``take`` sub-arena plus partial index — but now resident for
  the whole session instead of being rebuilt per run,
* **query batches** add a per-session term: one
  :class:`~repro.parallel.shared_spectra.SharedSpectraStore` spill per
  in-flight batch (~16 B × batch peaks on disk, one page-cache copy
  shared by all workers), deleted as soon as the batch's results are
  merged — steady-state spectra residency is one batch, not the
  stream, and the per-worker pickled payload is O(manifest).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["MemoryBreakdown", "IndexMemoryModel"]

_GB = 1024.0**3


@dataclass(frozen=True, slots=True)
class MemoryBreakdown:
    """Byte counts of one index configuration.

    All values in bytes; convenience properties express GB.
    """

    ion_bytes: int
    offsets_bytes: int
    peptide_bytes: int
    mapping_bytes: int
    transient_bytes: int

    @property
    def steady_bytes(self) -> int:
        """Bytes resident after construction completes."""
        return self.ion_bytes + self.offsets_bytes + self.peptide_bytes + self.mapping_bytes

    @property
    def peak_bytes(self) -> int:
        """Peak bytes during construction (steady + transient)."""
        return self.steady_bytes + self.transient_bytes

    @property
    def steady_gb(self) -> float:
        """Steady-state footprint in GB."""
        return self.steady_bytes / _GB

    @property
    def peak_gb(self) -> float:
        """Peak (construction-time) footprint in GB."""
        return self.peak_bytes / _GB


@dataclass(frozen=True, slots=True)
class IndexMemoryModel:
    """Structural memory model of the SLM index.

    Attributes
    ----------
    ions_per_entry:
        Average indexed ions per entry (peptide/spectrum).  At mean
        tryptic length ~17 a peptide has 16 cleavage sites, so b+y
        series at 1+ only give ~2*(17-1) = 32 ions; the default 64
        models the SLM-Transform C++ original, which indexes 1+ *and*
        2+ fragments (2 series x 2 charge states x 16 sites).  With
        the other defaults the model lands at ~0.27 GB / M entries
        steady-state — the tests accept it within +-0.1 GB of the
        paper's reported 0.346 GB / M-spectra shared-memory figure
        (the original's bookkeeping carries terms this structural
        model omits).
    bytes_per_ion:
        Ion entry width (original: 4).
    mean_sequence_length:
        Average residues per peptide (sequence storage).
    peptide_overhead_bytes:
        Fixed per-entry table bytes (mass + offsets bookkeeping).
    max_mz / resolution:
        Bucket-offset array extent: ``max_mz / resolution`` buckets of
        8 bytes, replicated per index instance.
    """

    ions_per_entry: float = 64.0
    bytes_per_ion: int = 4
    mean_sequence_length: float = 17.0
    peptide_overhead_bytes: int = 12
    max_mz: float = 5000.0
    resolution: float = 0.01

    def __post_init__(self) -> None:
        if self.ions_per_entry <= 0 or self.bytes_per_ion <= 0:
            raise ConfigurationError("ion parameters must be positive")
        if self.resolution <= 0 or self.max_mz <= 0:
            raise ConfigurationError("bucket parameters must be positive")

    @property
    def n_buckets(self) -> int:
        """Buckets in one offset array."""
        return int(self.max_mz / self.resolution) + 1

    def shared(self, n_entries: int, *, internal_chunking: bool = False) -> MemoryBreakdown:
        """Footprint of the shared-memory index over ``n_entries``."""
        ion = int(n_entries * self.ions_per_entry * self.bytes_per_ion)
        offsets = self.n_buckets * 8
        peptide = int(
            n_entries * (self.mean_sequence_length + self.peptide_overhead_bytes)
        )
        transient = 0 if internal_chunking else ion
        return MemoryBreakdown(
            ion_bytes=ion,
            offsets_bytes=offsets,
            peptide_bytes=peptide,
            mapping_bytes=0,
            transient_bytes=transient,
        )

    def distributed(
        self,
        n_entries: int,
        n_ranks: int,
        *,
        internal_chunking: bool = False,
    ) -> MemoryBreakdown:
        """System-wide footprint of the LBE-distributed index.

        Per rank: its ~``n_entries / n_ranks`` share of ion entries and
        peptide table plus a full bucket-offset array.  Master adds the
        mapping table (one int32 per entry).  The transient build
        overhead applies per rank but concurrently across the system,
        so system-wide it is still 1× the (distributed) ion bytes.
        """
        if n_ranks < 1:
            raise ConfigurationError(f"n_ranks must be >= 1, got {n_ranks}")
        ion = int(n_entries * self.ions_per_entry * self.bytes_per_ion)
        offsets = self.n_buckets * 8 * n_ranks
        peptide = int(
            n_entries * (self.mean_sequence_length + self.peptide_overhead_bytes)
        )
        mapping = 4 * n_entries
        transient = 0 if internal_chunking else ion
        return MemoryBreakdown(
            ion_bytes=ion,
            offsets_bytes=offsets,
            peptide_bytes=peptide,
            mapping_bytes=mapping,
            transient_bytes=transient,
        )

    def arena_bytes(self, n_entries: int, *, n_resolutions: int = 1) -> int:
        """Host-side fragment-arena bytes over ``n_entries``.

        Flat float64 m/z (8 B/ion) + int64 CSR offsets (8 B/entry + 8)
        + two int64 arrays per cached resolution (the pre-quantized
        buckets and the shared bucket-major sort order, 16 B/ion
        together).  This models **one** arena.  A distributed run
        holds the master arena *and* per-rank sub-arena copies of the
        same ion population (rank sub-arenas drop their quantization
        caches after the partial build but keep their m/z slices), so
        its system-wide arena total is roughly this figure plus
        ``8 B × n_ions`` of rank-held m/z.

        Under the process backend the master-arena term is the
        memmap-shared store: one physical copy machine-wide however
        many workers map it, resident only to the extent pages are
        touched (see the module docstring's shared-arena model); the
        per-worker sub-arena term is unchanged.
        """
        if n_resolutions < 0:
            raise ConfigurationError(
                f"n_resolutions must be >= 0, got {n_resolutions}"
            )
        n_ions = n_entries * self.ions_per_entry
        mz = 8.0 * n_ions
        offsets = 8 * (n_entries + 1)
        per_resolution = 16.0 * n_ions * n_resolutions
        return int(mz + offsets + per_resolution)

    def measure_arena(self, arena) -> int:  # noqa: ANN001
        """Resident bytes of a live :class:`~repro.index.arena.FragmentArena`.

        Used by tests to confirm :meth:`arena_bytes` tracks reality for
        the flat-array terms (per-entry metadata adds a few bytes the
        structural model ignores).
        """
        return int(arena.nbytes)

    def gb_per_million(self, n_entries: int, n_ranks: int | None = None) -> float:
        """GB per million entries (the paper's summary metric)."""
        if n_ranks is None:
            bd = self.shared(n_entries)
        else:
            bd = self.distributed(n_entries, n_ranks)
        return bd.steady_gb / (n_entries / 1e6)

    def measure_actual(self, index) -> MemoryBreakdown:  # noqa: ANN001
        """Byte counts of a live :class:`~repro.index.slm.SLMIndex`.

        Used by tests to confirm the structural model tracks reality
        (numpy's int64 offsets and float32 masses differ slightly from
        the C++ layout; the test asserts proportionality, not equality).
        """
        ion = int(index.ion_parents.nbytes)
        offsets = int(index.bucket_offsets.nbytes)
        peptide = int(
            sum(len(p.sequence) for p in index.peptides) + index.masses.nbytes
        )
        return MemoryBreakdown(
            ion_bytes=ion,
            offsets_bytes=offsets,
            peptide_bytes=peptide,
            mapping_bytes=0,
            transient_bytes=ion,
        )
