"""The SLM fragment-ion index.

Structure (mirroring the SLM-Transform C++ layout):

* every indexed peptide's theoretical b/y fragments are quantized to
  integer buckets of width ``resolution`` (``r = 0.01`` Da default),
* ion entries are stored bucket-major in one flat ``int32`` array of
  parent-peptide local ids (4 bytes/ion, as in the original whose 2G-ion
  limit equals 8 GB),
* a bucket-offset array (CSR) maps a bucket id to its ion-entry slice,
* a peptide table stores neutral masses (float32) for the optional
  precursor window filter.

Querying a spectrum walks each query peak's tolerance window
(±ΔF → a contiguous bucket range), gathers parent ids, and counts the
matched ion entries per peptide (*shared ions* — each indexed ion
falling inside any query peak's window contributes one count, exactly
the tally a fragment-ion index accumulates).  Peptides reaching the
shared-peak threshold become scoring candidates.

The index also reports exact *work counters* (buckets and ion entries
touched, candidates produced) which the distributed runtime converts to
virtual time; this is what makes load-imbalance experiments
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.chem.fragments import FragmentationSettings, fragment_mzs
from repro.chem.peptide import Peptide
from repro.constants import (
    DEFAULT_FRAGMENT_TOLERANCE,
    DEFAULT_RESOLUTION,
    DEFAULT_SHARED_PEAK_THRESHOLD,
)
from repro.errors import ConfigurationError
from repro.index.arena import FragmentArena, Workspace, concat_ranges, thread_workspace
from repro.spectra.model import Spectrum

__all__ = ["SLMIndexSettings", "FilterResult", "SLMIndex", "FILTER_BATCH_KEY_BUDGET"]

#: Default bound on the combined ``spectra × peptides`` key space of one
#: batched-filtration call (see :meth:`SLMIndex.filter_many`): it caps
#: the spectra per batch at ``max_batch_keys // n_peptides``, bounding
#: the per-batch candidate/histogram bookkeeping.
FILTER_BATCH_KEY_BUDGET = 1 << 22

#: Bound on the ions gathered by one batch (the dominant transient:
#: the int64 gather plus the int32 parent scratch, ~96 MB at this
#: default).  A batch projected to gather more is split by spectrum;
#: a single spectrum may still exceed it, exactly as the per-spectrum
#: path could.
FILTER_BATCH_ION_BUDGET = 1 << 23


@dataclass(frozen=True, slots=True)
class SLMIndexSettings:
    """Index/query settings (defaults = paper Section V-A.3).

    Attributes
    ----------
    resolution:
        Bucket width ``r`` in Da.
    fragment_tolerance:
        ΔF, half-width of the peak match window in Da.
    shared_peak_threshold:
        Minimum shared peaks for a peptide to become a candidate.
    precursor_tolerance:
        ΔM in Da; ``None`` or ``inf`` = open search (paper default).
    fragmentation:
        Which theoretical ion series are indexed.
    """

    resolution: float = DEFAULT_RESOLUTION
    fragment_tolerance: float = DEFAULT_FRAGMENT_TOLERANCE
    shared_peak_threshold: int = DEFAULT_SHARED_PEAK_THRESHOLD
    precursor_tolerance: float | None = None
    fragmentation: FragmentationSettings = field(default_factory=FragmentationSettings)

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ConfigurationError(f"resolution must be > 0, got {self.resolution}")
        if self.fragment_tolerance < 0:
            raise ConfigurationError(
                f"fragment_tolerance must be >= 0, got {self.fragment_tolerance}"
            )
        if self.shared_peak_threshold < 1:
            raise ConfigurationError(
                f"shared_peak_threshold must be >= 1, got {self.shared_peak_threshold}"
            )
        if self.precursor_tolerance is not None and self.precursor_tolerance < 0:
            raise ConfigurationError(
                f"precursor_tolerance must be >= 0 or None, got {self.precursor_tolerance}"
            )

    @property
    def is_open_search(self) -> bool:
        """True when no precursor window is applied."""
        return self.precursor_tolerance is None or np.isinf(self.precursor_tolerance)


@dataclass(slots=True)
class FilterResult:
    """Outcome of shared-peak filtration for one query spectrum.

    Attributes
    ----------
    candidates:
        Local peptide ids whose shared-peak count reached the threshold.
    shared_peaks:
        Shared-peak count per candidate (aligned with ``candidates``).
    buckets_scanned:
        Number of index buckets inspected.
    ions_scanned:
        Number of ion entries gathered across all inspected buckets
        (the dominant filtration cost).
    """

    candidates: np.ndarray
    shared_peaks: np.ndarray
    buckets_scanned: int
    ions_scanned: int


class SLMIndex:
    """A searchable fragment-ion index over a list of peptides.

    Parameters
    ----------
    peptides:
        The peptides (base + modified variants) to index.  Local ids
        are positions in this sequence.  May be ``None`` when an
        ``arena`` carrying per-entry ``masses`` is supplied: querying
        only needs the flat arrays, so backends that ship the arena to
        worker processes (the memmap-shared process backend) build
        **peptide-free** indexes without ever materializing — or
        pickling — :class:`~repro.chem.peptide.Peptide` objects.
        Peptide-free indexes cannot be serialized with
        :func:`~repro.index.serialize.save_index` or queried with
        :meth:`filter_bruteforce`.
    settings:
        Index/query settings.
    fragments:
        Optional precomputed fragment m/z arrays aligned with
        ``peptides`` (see
        :meth:`repro.search.database.IndexedDatabase.fragments_for`);
        skips per-peptide fragment generation during construction.
    arena:
        Optional :class:`~repro.index.arena.FragmentArena` aligned with
        ``peptides``; the fastest construction path (one argsort over a
        pre-quantized flat bucket slice, no per-peptide loop).  Takes
        precedence over ``fragments``.  A caller-provided arena is kept
        on ``self.arena`` (shared storage); arenas built internally
        from ``fragments``/``peptides`` are transient and freed after
        construction (``self.arena`` is ``None``).

    Notes
    -----
    Construction materializes flat bucket/parent arrays alongside
    their sorted copies before the transients are freed — the source of
    the paper's "2× temporary memory" remark (Section V-B); the memory
    model accounts for it.
    """

    def __init__(
        self,
        peptides: Sequence[Peptide] | None,
        settings: SLMIndexSettings = SLMIndexSettings(),
        *,
        fragments: Sequence[np.ndarray] | None = None,
        arena: FragmentArena | None = None,
    ) -> None:
        self.settings = settings
        self.peptides: List[Peptide] | None = (
            None if peptides is None else list(peptides)
        )
        owns_arena = arena is None
        if self.peptides is None:
            if arena is None:
                raise ConfigurationError(
                    "SLMIndex needs an arena when peptides is None"
                )
            if arena.masses is None:
                raise ConfigurationError(
                    "a peptide-free SLMIndex needs arena masses for the "
                    "precursor filter"
                )
            n = arena.n_entries
        else:
            n = len(self.peptides)
        self.n_peptides = n
        if arena is not None:
            if arena.n_entries != n:
                raise ConfigurationError(
                    f"arena covers {arena.n_entries} entries for {n} peptides"
                )
        elif fragments is not None:
            if len(fragments) != n:
                raise ConfigurationError(
                    f"{len(fragments)} fragment arrays for {n} peptides"
                )
            arena = FragmentArena.from_arrays(fragments)
        else:
            arena = FragmentArena.from_peptides(self.peptides, settings.fragmentation)
        if arena.masses is not None:
            self.masses = arena.masses
        else:
            self.masses = np.array([p.mass for p in self.peptides], dtype=np.float32)
        self.arena = arena
        self._ion_counts: np.ndarray | None = arena.counts
        self._masses64: np.ndarray | None = None

        # --- transient construction state (freed on return) ---------
        # The flat bucket array is entry-major, exactly the
        # concatenation of the per-peptide quantized arrays the old
        # loop produced (zero-fragment entries contribute nothing), so
        # the (arena-cached) stable sort order yields bit-identical
        # CSR structures; bucket counts come straight from the
        # unsorted array (bincount is order-independent).
        all_buckets = arena.buckets_for(settings.resolution)
        all_parents = np.repeat(
            np.arange(n, dtype=np.int32), arena.counts
        ) if n else np.empty(0, dtype=np.int32)

        order = arena.sort_order_for(settings.resolution)
        self.ion_parents: np.ndarray = all_parents[order]

        self.n_buckets = int(all_buckets.max()) + 1 if all_buckets.size else 0
        counts = np.bincount(
            all_buckets, minlength=self.n_buckets
        ) if all_buckets.size else np.zeros(0, dtype=np.int64)
        self.bucket_offsets = np.zeros(self.n_buckets + 1, dtype=np.int64)
        if self.n_buckets:
            np.cumsum(counts, out=self.bucket_offsets[1:])
        if owns_arena:
            # Nobody shares an internally-built arena: keeping it (or
            # its quantization/sort caches) would retain fragment data
            # the pre-arena construction freed on return — a resident
            # regression for e.g. ChunkedIndex, whose whole point is
            # bounding memory.  Per-peptide ion counts were already
            # captured above.
            self.arena = None

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return self.n_peptides

    @property
    def n_ions(self) -> int:
        """Total indexed ion entries."""
        return int(self.ion_parents.size)

    @property
    def ion_counts(self) -> np.ndarray:
        """Indexed ions per peptide (int64, length ``len(self)``).

        Taken from the arena offsets at construction; recovered from
        ``ion_parents`` for indexes deserialized without an arena.
        """
        if self._ion_counts is None:
            self._ion_counts = np.bincount(
                self.ion_parents, minlength=self.n_peptides
            ).astype(np.int64)
        return self._ion_counts

    def ions_of(self, local_id: int) -> int:
        """Number of indexed ions of peptide ``local_id`` (O(1))."""
        if not 0 <= local_id < self.n_peptides:
            return 0
        return int(self.ion_counts[local_id])

    @property
    def masses64(self) -> np.ndarray:
        """Peptide masses widened to float64 (lazy, cached).

        Masses are *stored* float32 (the 4-byte-per-entry paper layout)
        but every precursor-window comparison happens in float64 — the
        same dtype :meth:`~repro.index.chunks.ChunkedIndex.chunks_for`
        prunes chunks with — so flat, chunked, and batched filtration
        evaluate one consistent predicate at window boundaries.  The
        widening itself is exact (every float32 is a float64).
        """
        if self._masses64 is None:
            self._masses64 = self.masses.astype(np.float64)
        return self._masses64

    # -- querying ------------------------------------------------------

    def _apply_precursor_window(
        self, counts: np.ndarray, neutral_mass: float
    ) -> None:
        """Zero ``counts`` for peptides outside ``neutral_mass ± ΔM``, in place.

        The single authoritative form of the precursor predicate —
        float64 arithmetic over the float32-stored masses (see
        :attr:`masses64`) — shared by every filtration path so the
        boundary behaviour can never drift between them.  Callers
        check :attr:`SLMIndexSettings.is_open_search` first.
        """
        prec_tol = float(self.settings.precursor_tolerance)  # type: ignore[arg-type]
        outside = np.abs(self.masses64 - neutral_mass) > prec_tol
        counts[outside] = 0

    def _bucket_window(self, mz: float) -> tuple[int, int]:
        """Bucket id range [lo, hi) covering ``mz ± ΔF``, clipped."""
        r = self.settings.resolution
        tol = self.settings.fragment_tolerance
        lo = int(np.floor((mz - tol) / r))
        hi = int(np.floor((mz + tol) / r)) + 1
        return max(lo, 0), min(hi, self.n_buckets)

    def filter(self, spectrum: Spectrum) -> FilterResult:
        """Shared-peak filtration of ``spectrum`` against this index.

        Counts matched ion entries per peptide: every indexed ion whose
        bucket falls inside a query peak's tolerance window adds one.
        The whole spectrum is processed with vectorized segment
        gathering (no per-peak Python loop).
        """
        n = self.n_peptides
        if n == 0 or self.n_ions == 0 or spectrum.n_peaks == 0:
            return self._empty_result()
        r = self.settings.resolution
        frag_tol = self.settings.fragment_tolerance
        lo = np.floor((spectrum.mzs - frag_tol) / r).astype(np.int64)
        hi = np.floor((spectrum.mzs + frag_tol) / r).astype(np.int64) + 1
        np.clip(lo, 0, self.n_buckets, out=lo)
        np.clip(hi, 0, self.n_buckets, out=hi)
        valid = hi > lo
        lo, hi = lo[valid], hi[valid]
        buckets_scanned = int((hi - lo).sum())

        offsets = self.bucket_offsets
        starts = offsets[lo]
        stops = offsets[hi]
        # Concatenate the ranges [starts_i, stops_i) without a Python
        # loop, into thread-local scratch (reused across queries).
        ws = thread_workspace()
        gather = concat_ranges(starts, stops, workspace=ws, name="slm.filter")
        total = gather.size
        ions_scanned = total
        if total:
            parents_hit = ws.take("slm.filter.parents", total, np.int32)
            np.take(self.ion_parents, gather, out=parents_hit)
            counts = np.bincount(parents_hit, minlength=n)
        else:
            counts = np.zeros(n, dtype=np.int64)

        if not self.settings.is_open_search:
            self._apply_precursor_window(counts, spectrum.neutral_mass)

        cands = np.flatnonzero(counts >= self.settings.shared_peak_threshold).astype(
            np.int32
        )
        return FilterResult(
            candidates=cands,
            shared_peaks=counts[cands].astype(np.int32),
            buckets_scanned=buckets_scanned,
            ions_scanned=ions_scanned,
        )

    def _empty_result(self) -> FilterResult:
        """A zero-work :class:`FilterResult` (no candidates, nothing scanned)."""
        return FilterResult(
            candidates=np.empty(0, dtype=np.int32),
            shared_peaks=np.empty(0, dtype=np.int32),
            buckets_scanned=0,
            ions_scanned=0,
        )

    def filter_many(
        self,
        spectra: Sequence[Spectrum],
        *,
        max_batch_keys: int = FILTER_BATCH_KEY_BUDGET,
        workspace: Workspace | None = None,
    ) -> List[FilterResult]:
        """Batched filtration: one :class:`FilterResult` per spectrum.

        Instead of walking the spectra one at a time, every spectrum's
        peak-tolerance windows are flattened into **one** vectorized
        range concatenation over ``bucket_offsets`` and one ``np.take``
        of ``ion_parents`` for the whole batch, followed by segmented
        per-spectrum bincounts over contiguous slices of the shared
        gather — the HiCOPS-style cache-friendly array pass that
        amortizes kernel-launch overhead across the whole query batch
        (~1.7x over the per-spectrum loop on the benchmark workload).

        Results are **bit-identical** to per-spectrum :meth:`filter`
        calls: the per-element window arithmetic is unchanged, counting
        is integer-exact regardless of batching, and each spectrum's
        candidates come from the same ``flatnonzero`` over its own
        count vector.

        Parameters
        ----------
        spectra:
            Query spectra (any sequence; consumed in order).
        max_batch_keys:
            Bound on the combined ``spectra_in_batch × peptides`` key
            space of one batch; spectra are processed in groups of
            ``max(1, max_batch_keys // n_peptides)`` so transient
            state (the shared gather and the per-spectrum histograms)
            stays bounded however large the run is.
        workspace:
            Scratch-buffer workspace; defaults to the calling thread's
            shared workspace.
        """
        spectra = list(spectra)
        if not spectra:
            return []
        if max_batch_keys < 1:
            raise ConfigurationError(
                f"max_batch_keys must be >= 1, got {max_batch_keys}"
            )
        n = self.n_peptides
        if n == 0 or self.n_ions == 0:
            return [self._empty_result() for _ in spectra]
        ws = workspace if workspace is not None else thread_workspace()
        group = max(1, max_batch_keys // n)
        results: List[FilterResult] = []
        for i in range(0, len(spectra), group):
            results.extend(self._filter_batch(spectra[i : i + group], ws))
        return results

    def _filter_batch(
        self, batch: Sequence[Spectrum], ws: Workspace
    ) -> List[FilterResult]:
        """One bounded batch of the cross-spectrum filtration kernel.

        The expensive stages — window arithmetic, the bucket-offset
        lookups, the range concatenation, and the ion-parent gather —
        run **once** over every spectrum's peaks concatenated.  The
        gather indices are built branch-free as ``repeat(start -
        prefix, size) + iota`` instead of :func:`concat_ranges`'s
        fill/scatter/cumsum: same values element-for-element, but no
        serial cumsum dependency, which measures ~4x faster at batch
        sizes.  Counting then walks the gathered parents per spectrum
        segment: each spectrum's bincount scatters into its own small
        histogram, which stays cache-resident — profiling showed this
        beats one keyed ``spectrum * n + parent`` bincount over the
        combined key space, whose key construction alone costs two
        extra passes over every gathered ion.
        """
        n = self.n_peptides
        nb = len(batch)
        r = self.settings.resolution
        frag_tol = self.settings.fragment_tolerance

        peak_counts = np.fromiter(
            (s.n_peaks for s in batch), dtype=np.int64, count=nb
        )
        peak_bounds = np.zeros(nb + 1, dtype=np.int64)
        np.cumsum(peak_counts, out=peak_bounds[1:])
        total_peaks = int(peak_bounds[-1])
        if total_peaks == 0:
            return [self._empty_result() for _ in batch]
        all_mzs = np.concatenate([s.mzs for s in batch]) if nb > 1 else batch[0].mzs

        # Same per-element window arithmetic as :meth:`filter`.  After
        # clipping, hi >= lo always holds (hi > lo pre-clip and clip is
        # monotone), so empty windows are zero-width spans that drop
        # out of every segment sum and out of concat_ranges itself.
        lo = np.floor((all_mzs - frag_tol) / r).astype(np.int64)
        hi = np.floor((all_mzs + frag_tol) / r).astype(np.int64) + 1
        np.clip(lo, 0, self.n_buckets, out=lo)
        np.clip(hi, 0, self.n_buckets, out=hi)
        span_cum = np.zeros(total_peaks + 1, dtype=np.int64)
        np.cumsum(hi - lo, out=span_cum[1:])
        buckets_per_spec = span_cum[peak_bounds[1:]] - span_cum[peak_bounds[:-1]]

        starts = self.bucket_offsets[lo]
        stops = self.bucket_offsets[hi]
        sizes = stops - starts
        size_cum = np.zeros(total_peaks + 1, dtype=np.int64)
        np.cumsum(sizes, out=size_cum[1:])
        total = int(size_cum[-1])
        # Gathered ions stay grouped by spectrum, so each spectrum owns
        # one contiguous slice of the parent gather.
        ion_bounds = size_cum[peak_bounds]

        if total > FILTER_BATCH_ION_BUDGET and nb > 1:
            # The projected gather exceeds the scratch budget (wide
            # windows, many spectra): split at the spectrum boundary
            # nearest half the gathered ions and redo the (cheap)
            # window pass per half.  Each spectrum's result depends
            # only on its own gather slice, so splitting cannot change
            # any output.
            cut = int(np.searchsorted(ion_bounds, total // 2))
            cut = min(max(cut, 1), nb - 1)
            return self._filter_batch(batch[:cut], ws) + self._filter_batch(
                batch[cut:], ws
            )

        parents_hit = ws.take("slm.filter_batch.parents", total, np.int32)
        if total:
            # Branch-free concat_ranges: position j of window w is
            # (starts[w] - size_cum[w]) + (size_cum[w] + j) — repeat
            # the per-window base, add the global ascending index.
            # Zero-width windows repeat nothing, exactly as the
            # cumsum-based concat_ranges drops them.
            gather = np.repeat(starts - size_cum[:-1], sizes)
            gather += ws.iota(total, np.int64)
            np.take(self.ion_parents, gather, out=parents_hit)

        windowed = not self.settings.is_open_search
        threshold = self.settings.shared_peak_threshold

        results: List[FilterResult] = []
        for b in range(nb):
            seg = parents_hit[ion_bounds[b] : ion_bounds[b + 1]]
            if seg.size:
                counts = np.bincount(seg, minlength=n)
            else:
                counts = np.zeros(n, dtype=np.int64)
            if windowed:
                self._apply_precursor_window(counts, batch[b].neutral_mass)
            cands = np.flatnonzero(counts >= threshold).astype(np.int32)
            results.append(
                FilterResult(
                    candidates=cands,
                    shared_peaks=counts[cands].astype(np.int32),
                    buckets_scanned=int(buckets_per_spec[b]),
                    ions_scanned=int(ion_bounds[b + 1] - ion_bounds[b]),
                )
            )
        return results

    def filter_bruteforce(self, spectrum: Spectrum) -> FilterResult:
        """Reference implementation: per-peptide peak matching.

        Quadratic; used only by tests to validate :meth:`filter`.
        Matching uses the same bucket quantization and the same
        ion-multiplicity semantics as the index (each (ion, peak
        window) containment adds one), so both paths agree exactly.
        """
        if self.peptides is None:
            raise ConfigurationError(
                "filter_bruteforce needs peptide objects; this index was "
                "built peptide-free over an arena"
            )
        n = self.n_peptides
        counts = np.zeros(n, dtype=np.int32)
        inv_r = 1.0 / self.settings.resolution
        for local_id, pep in enumerate(self.peptides):
            mzs = fragment_mzs(pep, self.settings.fragmentation)
            if mzs.size == 0:
                continue
            pep_buckets = np.sort(np.floor(mzs * inv_r).astype(np.int64))
            shared = 0
            for mz in spectrum.mzs:
                lo, hi = self._bucket_window(float(mz))
                if lo >= hi:
                    continue
                i = np.searchsorted(pep_buckets, lo, side="left")
                j = np.searchsorted(pep_buckets, hi, side="left")
                shared += int(j - i)
            counts[local_id] = shared
        if not self.settings.is_open_search:
            self._apply_precursor_window(counts, spectrum.neutral_mass)
        cands = np.flatnonzero(counts >= self.settings.shared_peak_threshold).astype(
            np.int32
        )
        return FilterResult(
            candidates=cands,
            shared_peaks=counts[cands],
            buckets_scanned=0,
            ions_scanned=0,
        )
