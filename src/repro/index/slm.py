"""The SLM fragment-ion index.

Structure (mirroring the SLM-Transform C++ layout):

* every indexed peptide's theoretical b/y fragments are quantized to
  integer buckets of width ``resolution`` (``r = 0.01`` Da default),
* ion entries are stored bucket-major in one flat ``int32`` array of
  parent-peptide local ids (4 bytes/ion, as in the original whose 2G-ion
  limit equals 8 GB),
* a bucket-offset array (CSR) maps a bucket id to its ion-entry slice,
* a peptide table stores neutral masses (float32) for the optional
  precursor window filter.

Querying a spectrum walks each query peak's tolerance window
(±ΔF → a contiguous bucket range), gathers parent ids, and counts the
matched ion entries per peptide (*shared ions* — each indexed ion
falling inside any query peak's window contributes one count, exactly
the tally a fragment-ion index accumulates).  Peptides reaching the
shared-peak threshold become scoring candidates.

The index also reports exact *work counters* (buckets and ion entries
touched, candidates produced) which the distributed runtime converts to
virtual time; this is what makes load-imbalance experiments
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.chem.fragments import FragmentationSettings, fragment_mzs
from repro.chem.peptide import Peptide
from repro.constants import (
    DEFAULT_FRAGMENT_TOLERANCE,
    DEFAULT_RESOLUTION,
    DEFAULT_SHARED_PEAK_THRESHOLD,
)
from repro.errors import ConfigurationError
from repro.spectra.model import Spectrum

__all__ = ["SLMIndexSettings", "FilterResult", "SLMIndex"]


@dataclass(frozen=True, slots=True)
class SLMIndexSettings:
    """Index/query settings (defaults = paper Section V-A.3).

    Attributes
    ----------
    resolution:
        Bucket width ``r`` in Da.
    fragment_tolerance:
        ΔF, half-width of the peak match window in Da.
    shared_peak_threshold:
        Minimum shared peaks for a peptide to become a candidate.
    precursor_tolerance:
        ΔM in Da; ``None`` or ``inf`` = open search (paper default).
    fragmentation:
        Which theoretical ion series are indexed.
    """

    resolution: float = DEFAULT_RESOLUTION
    fragment_tolerance: float = DEFAULT_FRAGMENT_TOLERANCE
    shared_peak_threshold: int = DEFAULT_SHARED_PEAK_THRESHOLD
    precursor_tolerance: float | None = None
    fragmentation: FragmentationSettings = field(default_factory=FragmentationSettings)

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ConfigurationError(f"resolution must be > 0, got {self.resolution}")
        if self.fragment_tolerance < 0:
            raise ConfigurationError(
                f"fragment_tolerance must be >= 0, got {self.fragment_tolerance}"
            )
        if self.shared_peak_threshold < 1:
            raise ConfigurationError(
                f"shared_peak_threshold must be >= 1, got {self.shared_peak_threshold}"
            )
        if self.precursor_tolerance is not None and self.precursor_tolerance < 0:
            raise ConfigurationError(
                f"precursor_tolerance must be >= 0 or None, got {self.precursor_tolerance}"
            )

    @property
    def is_open_search(self) -> bool:
        """True when no precursor window is applied."""
        return self.precursor_tolerance is None or np.isinf(self.precursor_tolerance)


@dataclass(slots=True)
class FilterResult:
    """Outcome of shared-peak filtration for one query spectrum.

    Attributes
    ----------
    candidates:
        Local peptide ids whose shared-peak count reached the threshold.
    shared_peaks:
        Shared-peak count per candidate (aligned with ``candidates``).
    buckets_scanned:
        Number of index buckets inspected.
    ions_scanned:
        Number of ion entries gathered across all inspected buckets
        (the dominant filtration cost).
    """

    candidates: np.ndarray
    shared_peaks: np.ndarray
    buckets_scanned: int
    ions_scanned: int


class SLMIndex:
    """A searchable fragment-ion index over a list of peptides.

    Parameters
    ----------
    peptides:
        The peptides (base + modified variants) to index.  Local ids
        are positions in this sequence.
    settings:
        Index/query settings.
    fragments:
        Optional precomputed fragment m/z arrays aligned with
        ``peptides`` (see
        :meth:`repro.search.database.IndexedDatabase.fragments_for`);
        skips per-peptide fragment generation during construction.

    Notes
    -----
    Construction transiently materializes per-peptide fragment arrays
    before the bucket-major sort — the source of the paper's "2×
    temporary memory" remark (Section V-B); the memory model accounts
    for it.
    """

    def __init__(
        self,
        peptides: Sequence[Peptide],
        settings: SLMIndexSettings = SLMIndexSettings(),
        *,
        fragments: Sequence[np.ndarray] | None = None,
    ) -> None:
        self.settings = settings
        self.peptides: List[Peptide] = list(peptides)
        if fragments is not None and len(fragments) != len(self.peptides):
            raise ConfigurationError(
                f"{len(fragments)} fragment arrays for {len(self.peptides)} peptides"
            )
        self.masses = np.array([p.mass for p in self.peptides], dtype=np.float32)

        # --- transient construction state (freed on return) ---------
        ion_buckets: List[np.ndarray] = []
        ion_parents: List[np.ndarray] = []
        inv_r = 1.0 / settings.resolution
        for local_id, pep in enumerate(self.peptides):
            mzs = (
                fragments[local_id]
                if fragments is not None
                else fragment_mzs(pep, settings.fragmentation)
            )
            if mzs.size == 0:
                continue
            buckets = np.floor(mzs * inv_r).astype(np.int64)
            ion_buckets.append(buckets)
            ion_parents.append(np.full(buckets.size, local_id, dtype=np.int32))
        if ion_buckets:
            all_buckets = np.concatenate(ion_buckets)
            all_parents = np.concatenate(ion_parents)
        else:
            all_buckets = np.empty(0, dtype=np.int64)
            all_parents = np.empty(0, dtype=np.int32)
        del ion_buckets, ion_parents

        order = np.argsort(all_buckets, kind="stable")
        all_buckets = all_buckets[order]
        self.ion_parents: np.ndarray = all_parents[order]

        self.n_buckets = int(all_buckets[-1]) + 1 if all_buckets.size else 0
        counts = np.bincount(
            all_buckets, minlength=self.n_buckets
        ) if all_buckets.size else np.zeros(0, dtype=np.int64)
        self.bucket_offsets = np.zeros(self.n_buckets + 1, dtype=np.int64)
        if self.n_buckets:
            np.cumsum(counts, out=self.bucket_offsets[1:])

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self.peptides)

    @property
    def n_ions(self) -> int:
        """Total indexed ion entries."""
        return int(self.ion_parents.size)

    def ions_of(self, local_id: int) -> int:
        """Number of indexed ions of peptide ``local_id`` (O(n_ions))."""
        return int(np.count_nonzero(self.ion_parents == local_id))

    # -- querying ------------------------------------------------------

    def _bucket_window(self, mz: float) -> tuple[int, int]:
        """Bucket id range [lo, hi) covering ``mz ± ΔF``, clipped."""
        r = self.settings.resolution
        tol = self.settings.fragment_tolerance
        lo = int(np.floor((mz - tol) / r))
        hi = int(np.floor((mz + tol) / r)) + 1
        return max(lo, 0), min(hi, self.n_buckets)

    def filter(self, spectrum: Spectrum) -> FilterResult:
        """Shared-peak filtration of ``spectrum`` against this index.

        Counts matched ion entries per peptide: every indexed ion whose
        bucket falls inside a query peak's tolerance window adds one.
        The whole spectrum is processed with vectorized segment
        gathering (no per-peak Python loop).
        """
        n = len(self.peptides)
        if n == 0 or self.n_ions == 0 or spectrum.n_peaks == 0:
            return FilterResult(
                candidates=np.empty(0, dtype=np.int32),
                shared_peaks=np.empty(0, dtype=np.int32),
                buckets_scanned=0,
                ions_scanned=0,
            )
        r = self.settings.resolution
        tol = self.settings.fragment_tolerance
        lo = np.floor((spectrum.mzs - tol) / r).astype(np.int64)
        hi = np.floor((spectrum.mzs + tol) / r).astype(np.int64) + 1
        np.clip(lo, 0, self.n_buckets, out=lo)
        np.clip(hi, 0, self.n_buckets, out=hi)
        valid = hi > lo
        lo, hi = lo[valid], hi[valid]
        buckets_scanned = int((hi - lo).sum())

        offsets = self.bucket_offsets
        starts = offsets[lo]
        stops = offsets[hi]
        spans = stops - starts
        nonempty = spans > 0
        starts, spans = starts[nonempty], spans[nonempty]
        total = int(spans.sum())
        ions_scanned = total
        if total:
            # Concatenate the ranges [starts_i, starts_i + spans_i)
            # without a Python loop: unit steps with jump corrections
            # at segment boundaries, then a cumulative sum.
            steps = np.ones(total, dtype=np.int64)
            steps[0] = starts[0]
            seg_heads = np.cumsum(spans)[:-1]
            steps[seg_heads] = starts[1:] - (starts[:-1] + spans[:-1] - 1)
            gather = np.cumsum(steps)
            counts = np.bincount(self.ion_parents[gather], minlength=n).astype(
                np.int32
            )
        else:
            counts = np.zeros(n, dtype=np.int32)

        if not self.settings.is_open_search:
            tol = float(self.settings.precursor_tolerance)  # type: ignore[arg-type]
            outside = np.abs(self.masses - spectrum.neutral_mass) > tol
            counts[outside] = 0

        cands = np.flatnonzero(counts >= self.settings.shared_peak_threshold).astype(
            np.int32
        )
        return FilterResult(
            candidates=cands,
            shared_peaks=counts[cands],
            buckets_scanned=buckets_scanned,
            ions_scanned=ions_scanned,
        )

    def filter_bruteforce(self, spectrum: Spectrum) -> FilterResult:
        """Reference implementation: per-peptide peak matching.

        Quadratic; used only by tests to validate :meth:`filter`.
        Matching uses the same bucket quantization and the same
        ion-multiplicity semantics as the index (each (ion, peak
        window) containment adds one), so both paths agree exactly.
        """
        n = len(self.peptides)
        counts = np.zeros(n, dtype=np.int32)
        inv_r = 1.0 / self.settings.resolution
        for local_id, pep in enumerate(self.peptides):
            mzs = fragment_mzs(pep, self.settings.fragmentation)
            if mzs.size == 0:
                continue
            pep_buckets = np.sort(np.floor(mzs * inv_r).astype(np.int64))
            shared = 0
            for mz in spectrum.mzs:
                lo, hi = self._bucket_window(float(mz))
                if lo >= hi:
                    continue
                i = np.searchsorted(pep_buckets, lo, side="left")
                j = np.searchsorted(pep_buckets, hi, side="left")
                shared += int(j - i)
            counts[local_id] = shared
        if not self.settings.is_open_search:
            tol = float(self.settings.precursor_tolerance)  # type: ignore[arg-type]
            outside = np.abs(self.masses - spectrum.neutral_mass) > tol
            counts[outside] = 0
        cands = np.flatnonzero(counts >= self.settings.shared_peak_threshold).astype(
            np.int32
        )
        return FilterResult(
            candidates=cands,
            shared_peaks=counts[cands],
            buckets_scanned=0,
            ions_scanned=0,
        )
