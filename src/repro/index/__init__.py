"""SLM-Transform index substrate.

Reimplementation of the SLM-Transform fragment-ion index (Haseeb et
al., 2019 — reference [6] of the LBE paper), the host data structure
LBE partitions:

* :mod:`~repro.index.arena` — the flat CSR fragment arena feeding the
  hot-path kernels: one float64 m/z array + int64 offsets (+ cached
  per-resolution bucket quantizations) per fragmentation setting.
* :mod:`~repro.index.slm` — the index proper: fragment ions quantized
  at resolution ``r`` into a CSR bucket layout with parent-peptide
  back-references; shared-peak filtration queries.
* :mod:`~repro.index.chunks` — the shared-memory chunking scheme of the
  paper's Fig. 1 (sort by precursor mass, split into bounded chunks).
* :mod:`~repro.index.memory` — byte-accurate memory accounting used to
  reproduce Fig. 5 at paper scale.
"""

from repro.index.arena import FragmentArena, Workspace, concat_ranges
from repro.index.slm import SLMIndex, SLMIndexSettings, FilterResult
from repro.index.chunks import ChunkedIndex, ChunkingConfig
from repro.index.memory import IndexMemoryModel, MemoryBreakdown
from repro.index.serialize import load_index, save_index

__all__ = [
    "FragmentArena",
    "Workspace",
    "concat_ranges",
    "SLMIndex",
    "SLMIndexSettings",
    "FilterResult",
    "ChunkedIndex",
    "ChunkingConfig",
    "IndexMemoryModel",
    "MemoryBreakdown",
    "load_index",
    "save_index",
]
