"""repro — reproduction of *LBE: A Computational Load Balancing
Algorithm for Speeding up Parallel Peptide Search in Mass-Spectrometry
based Proteomics* (Haseeb, Afzali & Saeed, IPDPSW 2019).

The package provides every system the paper depends on, rebuilt in
Python (see DESIGN.md for the substitution rationale):

* :mod:`repro.chem` — peptide chemistry (masses, PTMs, fragments)
* :mod:`repro.db` — proteome generation, digestion, dedup, FASTA
* :mod:`repro.spectra` — MS/MS spectra, MS2 io, synthetic runs
* :mod:`repro.index` — the SLM-Transform fragment-ion index
* :mod:`repro.core` — **LBE itself**: grouping, partitioning, mapping
* :mod:`repro.mpi` — simulated MPI runtime with virtual time
* :mod:`repro.search` — serial + distributed search engines, metrics
* :mod:`repro.bench` — the experiment harness for Figures 5–11

Quickstart::

    from repro import quick_pipeline
    results = quick_pipeline(n_families=20, n_spectra=50, n_ranks=4)
    print(results.cpsms_per_query, results.query_time)
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.chem import Peptide, paper_modifications
from repro.core import (
    GroupingConfig,
    group_peptides,
    make_policy,
    plan_distribution,
)
from repro.db import DigestionConfig, ProteomeConfig, generate_proteome
from repro.index import SLMIndex, SLMIndexSettings
from repro.mpi import Communicator, run_spmd
from repro.search import (
    DatabaseConfig,
    DistributedSearchEngine,
    EngineConfig,
    IndexedDatabase,
    SearchResults,
    SerialSearchEngine,
    load_imbalance,
)
from repro.spectra import SyntheticRunConfig, generate_run

__all__ = [
    "__version__",
    "Peptide",
    "paper_modifications",
    "GroupingConfig",
    "group_peptides",
    "make_policy",
    "plan_distribution",
    "DigestionConfig",
    "ProteomeConfig",
    "generate_proteome",
    "SLMIndex",
    "SLMIndexSettings",
    "Communicator",
    "run_spmd",
    "DatabaseConfig",
    "DistributedSearchEngine",
    "EngineConfig",
    "IndexedDatabase",
    "SearchResults",
    "SerialSearchEngine",
    "load_imbalance",
    "SyntheticRunConfig",
    "generate_run",
    "quick_pipeline",
]


def quick_pipeline(
    *,
    n_families: int = 20,
    n_spectra: int = 50,
    n_ranks: int = 4,
    policy: str = "cyclic",
    seed: int = 7,
) -> SearchResults:
    """One-call demo pipeline: proteome → database → spectra → search.

    Builds a small synthetic workload and runs the LBE-distributed
    engine; see ``examples/quickstart.py`` for the narrated version.
    """
    db = IndexedDatabase.build(
        DatabaseConfig(proteome=ProteomeConfig(n_families=n_families, seed=seed))
    )
    spectra = generate_run(
        db.entries, SyntheticRunConfig(n_spectra=n_spectra, seed=seed + 1)
    )
    engine = DistributedSearchEngine(
        db, EngineConfig(n_ranks=n_ranks, policy=policy)
    )
    return engine.run(spectra)
