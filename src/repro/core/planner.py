"""LBE planning: group → partition → per-rank manifests (the "LBE layer").

:func:`plan_distribution` runs the full Section-III pipeline on a
peptide list and returns an :class:`LBEPlan`, the single object the
distributed engine needs: which peptides each rank indexes (in local-id
order) plus the master's mapping table back to global ids.

The plan operates on *base* peptide sequences (the paper clusters
unmodified sequences; "the normal peptide sequences and their modified
variants are considered to be part of the same data group",
Section III-C).  Modified variants are attached at index-build time by
the engine, colocated with their base peptide's rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.chem.peptide import Peptide
from repro.core.grouping import Grouping, GroupingConfig, group_peptides
from repro.core.mapping import MappingTable
from repro.core.partition import PartitionAssignment, PartitionPolicy
from repro.errors import ConfigurationError

__all__ = ["LBEPlan", "plan_distribution", "changed_ranks"]


@dataclass(frozen=True, slots=True)
class LBEPlan:
    """A complete data-distribution plan.

    Attributes
    ----------
    grouping:
        Output of Algorithm 1 over the base sequences.
    assignment:
        Rank assignment over grouped-order positions.
    mapping:
        Master mapping table: (rank, local id) → global peptide id.
    n_ranks:
        Number of ranks.
    """

    grouping: Grouping
    assignment: PartitionAssignment
    mapping: MappingTable
    n_ranks: int

    def rank_global_ids(self, rank: int) -> np.ndarray:
        """Global peptide ids indexed by ``rank``, in local-id order."""
        return self.mapping.globals_of(rank)

    def rank_peptides(self, peptides: Sequence[Peptide], rank: int) -> List[Peptide]:
        """Materialize the peptide objects of ``rank``'s partition."""
        return [peptides[int(g)] for g in self.rank_global_ids(rank)]

    def partition_sizes(self) -> np.ndarray:
        """Peptides per rank."""
        return np.array(
            [self.mapping.rank_size(r) for r in range(self.n_ranks)], dtype=np.int64
        )

    def rank_loads(self, weights: np.ndarray) -> np.ndarray:
        """Per-rank predicted work under this plan.

        ``weights`` is indexed by the grouping's *input* space (for the
        engine's plans: base peptide id — e.g. the structural
        :class:`~repro.core.predict.WorkModel` prediction); rank
        ``r``'s load sums over its assigned items.  This is what live
        rebalancing divides observed wall times by to turn "rank 1 is
        slow" into "rank 1's *speed* is 1/3" — a rank holding half the
        work *should* take longer.
        """
        weights = np.asarray(weights, dtype=np.float64)
        loads = np.empty(self.n_ranks, dtype=np.float64)
        for rank in range(self.n_ranks):
            items = self.grouping.order[self.assignment.members(rank)]
            loads[rank] = float(weights[items].sum())
        return loads


def changed_ranks(old: LBEPlan, new: LBEPlan) -> List[int]:
    """Ranks of ``new`` whose manifest differs from ``old``'s.

    The live-migration diff: only these ranks need a re-attach (their
    resident index no longer matches the plan); every other rank keeps
    its state untouched.  Ranks beyond ``old.n_ranks`` (pool growth)
    are always included; a shrink needs no entry here — the surplus
    ranks are simply retired.  Manifests are compared in local-id
    order, because that order *is* the index layout.
    """
    out: List[int] = []
    for rank in range(new.n_ranks):
        if rank >= old.n_ranks or not np.array_equal(
            old.rank_global_ids(rank), new.rank_global_ids(rank)
        ):
            out.append(rank)
    return out


def plan_distribution(
    peptides: Sequence[Peptide],
    policy: PartitionPolicy,
    n_ranks: int,
    grouping_config: GroupingConfig = GroupingConfig(),
) -> LBEPlan:
    """Run grouping and partitioning; return the distribution plan.

    Parameters
    ----------
    peptides:
        Base (deduplicated, unmodified) peptides; global ids are the
        positions in this sequence.
    policy:
        Partition policy instance (Chunk/Cyclic/Random).
    n_ranks:
        Number of ranks ``p``.
    grouping_config:
        Algorithm 1 parameters.
    """
    if n_ranks < 1:
        raise ConfigurationError(f"n_ranks must be >= 1, got {n_ranks}")
    sequences = [p.sequence for p in peptides]
    grouping = group_peptides(sequences, grouping_config)
    assignment = policy.assign(grouping, n_ranks)
    mapping = MappingTable.from_assignment(assignment, grouping.order)
    return LBEPlan(
        grouping=grouping,
        assignment=assignment,
        mapping=mapping,
        n_ranks=n_ranks,
    )
