"""LBE — the paper's contribution.

The pipeline of Section III:

1. :mod:`~repro.core.grouping` clusters similar peptide sequences
   (Algorithm 1) using the bounded edit distance of
   :mod:`~repro.core.editdist`;
2. :mod:`~repro.core.partition` spreads the groups across ranks with
   the Chunk / Cyclic / Random policies of Section III-D;
3. :mod:`~repro.core.mapping` builds the master's O(1)
   virtual-index → global-index mapping table (Fig. 4);
4. :mod:`~repro.core.planner` ties the stages into an
   :class:`~repro.core.planner.LBEPlan` consumed by the distributed
   search engine.
"""

from repro.core.editdist import bounded_edit_distance, edit_distance
from repro.core.grouping import Grouping, GroupingConfig, group_peptides
from repro.core.partition import (
    PartitionAssignment,
    PartitionPolicy,
    ChunkPolicy,
    CyclicPolicy,
    RandomPolicy,
    make_policy,
)
from repro.core.predict import PredictivePolicy, WorkModel
from repro.core.mapping import MappingTable
from repro.core.planner import LBEPlan, plan_distribution

__all__ = [
    "bounded_edit_distance",
    "edit_distance",
    "Grouping",
    "GroupingConfig",
    "group_peptides",
    "PartitionAssignment",
    "PartitionPolicy",
    "ChunkPolicy",
    "CyclicPolicy",
    "RandomPolicy",
    "PredictivePolicy",
    "WorkModel",
    "make_policy",
    "MappingTable",
    "LBEPlan",
    "plan_distribution",
]
