"""Load-predicting partitioner for heterogeneous clusters (paper §VIII).

The paper's future work announces "a load-predicting model for
heterogeneous memory-distributed architectures".  This module
implements it:

* :class:`WorkModel` predicts the query-load contribution of each
  *base peptide* (its entries' filtration + scoring work).  Two
  predictors are provided:

  - the **structural** predictor uses only database statistics — a
    base's entry count times its fragment count approximates how often
    its ions are touched and how much scoring it triggers;
  - the **sampled** predictor refines that with measured candidate
    counts from a small pilot search (the classic measure-then-place
    loop).

* :class:`PredictivePolicy` ("lpt") performs Longest-Processing-Time
  greedy assignment of bases to ranks, weighted by per-rank **speed
  factors**, so faster machines receive proportionally more predicted
  work.  With equal speeds it degenerates to classic LPT
  load balancing; with measured speeds it absorbs cluster
  heterogeneity that Cyclic cannot see.

The policy plugs into the standard registry (``make_policy("lpt")``)
and the distributed engine (``EngineConfig(policy="lpt")``), which
feeds it the engine's machine-speed model automatically.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.grouping import Grouping
from repro.core.partition import POLICIES, PartitionAssignment, PartitionPolicy
from repro.errors import ConfigurationError

__all__ = ["WorkModel", "PredictivePolicy"]


@dataclass(frozen=True, slots=True)
class WorkModel:
    """Per-base query-load predictor.

    Attributes
    ----------
    entry_weight:
        Cost per index entry of a base (filtration traffic is
        proportional to indexed ions ≈ entries × length).
    residue_weight:
        Additional cost per residue per entry (scoring cost grows with
        peptide length).
    """

    entry_weight: float = 1.0
    residue_weight: float = 0.12

    def __post_init__(self) -> None:
        if self.entry_weight < 0 or self.residue_weight < 0:
            raise ConfigurationError("work-model weights must be >= 0")

    def structural(
        self, entry_counts: np.ndarray, base_lengths: np.ndarray
    ) -> np.ndarray:
        """Predict per-base work from database statistics alone.

        Parameters
        ----------
        entry_counts:
            Entries (base + variants) per base peptide.
        base_lengths:
            Residues per base peptide.
        """
        entry_counts = np.asarray(entry_counts, dtype=np.float64)
        base_lengths = np.asarray(base_lengths, dtype=np.float64)
        if entry_counts.shape != base_lengths.shape:
            raise ConfigurationError("entry_counts and base_lengths must align")
        return entry_counts * (
            self.entry_weight + self.residue_weight * base_lengths
        )

    def sampled(
        self,
        structural: np.ndarray,
        sampled_candidates: np.ndarray,
        *,
        blend: float = 0.5,
    ) -> np.ndarray:
        """Blend the structural prediction with pilot-search counts.

        ``sampled_candidates[b]`` is the number of times base ``b``'s
        entries appeared as candidates in a pilot search (any subset of
        the query set).  Both signals are normalized to unit mean
        before blending so ``blend`` is scale-free: 0 = structural
        only, 1 = sampled only.
        """
        if not 0.0 <= blend <= 1.0:
            raise ConfigurationError(f"blend must be in [0,1], got {blend}")
        structural = np.asarray(structural, dtype=np.float64)
        sampled = np.asarray(sampled_candidates, dtype=np.float64)
        if structural.shape != sampled.shape:
            raise ConfigurationError("structural and sampled arrays must align")

        def _unit_mean(a: np.ndarray) -> np.ndarray:
            mean = a.mean()
            return a / mean if mean > 0 else np.ones_like(a)

        return (1.0 - blend) * _unit_mean(structural) + blend * _unit_mean(
            sampled + 1.0  # +1 smoothing: unseen bases keep nonzero weight
        )


class PredictivePolicy(PartitionPolicy):
    """Weighted-LPT assignment of bases to (possibly unequal) ranks.

    Parameters
    ----------
    weights:
        Predicted work per grouped item (positions in the grouping's
        *input* index space, like the sequences passed to Algorithm 1).
        ``None`` falls back to uniform weights (pure count balancing).
    speeds:
        Relative rank speeds; rank ``r``'s finishing time for load
        ``L`` is ``L / speeds[r]``.  ``None`` = homogeneous.

    Notes
    -----
    LPT greedy: sort items by descending weight, repeatedly give the
    next item to the rank with the smallest *predicted finishing
    time*.  For makespan this is the classic 4/3-approximation; with
    speeds it is the standard uniform-machines variant.
    """

    name = "lpt"

    def __init__(
        self,
        weights: Sequence[float] | None = None,
        speeds: Sequence[float] | None = None,
    ) -> None:
        self.weights = None if weights is None else np.asarray(weights, np.float64)
        self.speeds = None if speeds is None else np.asarray(speeds, np.float64)
        if self.weights is not None and np.any(self.weights < 0):
            raise ConfigurationError("weights must be >= 0")
        if self.speeds is not None and np.any(self.speeds <= 0):
            raise ConfigurationError("speeds must be > 0")

    def assign(self, grouping: Grouping, n_ranks: int) -> PartitionAssignment:
        self._check(n_ranks)
        n = grouping.n_sequences
        if self.speeds is not None and self.speeds.size != n_ranks:
            raise ConfigurationError(
                f"{self.speeds.size} speeds for {n_ranks} ranks"
            )
        speeds = (
            np.ones(n_ranks) if self.speeds is None else self.speeds
        )
        if self.weights is None:
            weights = np.ones(n, dtype=np.float64)
        else:
            if self.weights.size != n:
                raise ConfigurationError(
                    f"{self.weights.size} weights for {n} grouped items"
                )
            # weights are indexed by input position; reorder to grouped order.
            weights = self.weights[grouping.order]

        rank_of = np.empty(n, dtype=np.int32)
        # Heap of (predicted finish time, rank). Ties resolve by rank id,
        # keeping the assignment deterministic.
        heap = [(0.0, r) for r in range(n_ranks)]
        heapq.heapify(heap)
        for k in np.argsort(-weights, kind="stable"):
            load, rank = heapq.heappop(heap)
            rank_of[int(k)] = rank
            heapq.heappush(heap, (load + weights[int(k)] / speeds[rank], rank))
        return PartitionAssignment(
            rank_of=rank_of, n_ranks=n_ranks, policy_name=self.name
        )

    def predicted_loads(
        self, grouping: Grouping, assignment: PartitionAssignment
    ) -> np.ndarray:
        """Predicted per-rank finishing times under this policy's model."""
        n_ranks = assignment.n_ranks
        speeds = np.ones(n_ranks) if self.speeds is None else self.speeds
        if self.weights is None:
            weights = np.ones(grouping.n_sequences, dtype=np.float64)
        else:
            weights = self.weights[grouping.order]
        loads = np.zeros(n_ranks, dtype=np.float64)
        np.add.at(loads, assignment.rank_of, weights)
        return loads / speeds


# Register with the shared policy registry (factory: make_policy("lpt")).
POLICIES[PredictivePolicy.name] = PredictivePolicy
