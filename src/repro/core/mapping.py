"""The master's mapping table (paper Section III-B / Fig. 4).

Each rank indexes its peptides under dense *local* ids 0..n_m-1.  When
rank ``m`` reports a match for local id ``l``, the master resolves the
original (global) peptide id with one array access:
``table[offset[m] + l]``.  The paper describes exactly this layout —
"a simple array of size N where each i-th chunk of size N/p contains
the indices of peptide index entries mapped to machine i" — except our
chunks may differ by one entry because ranks may own unequal counts.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.partition import PartitionAssignment
from repro.errors import ConfigurationError, PartitionError

__all__ = ["MappingTable"]


class MappingTable:
    """O(1) virtual-to-global index resolution.

    Parameters
    ----------
    per_rank_globals:
        For each rank, the array of global ids in local-id order.

    Notes
    -----
    The flat layout (`table` + `offsets`) is what the master would hold
    in 4-byte entries; :meth:`nbytes` reports that figure for the
    memory model.
    """

    def __init__(self, per_rank_globals: Sequence[np.ndarray]) -> None:
        if not per_rank_globals:
            raise ConfigurationError("mapping table needs at least one rank")
        self.offsets = np.zeros(len(per_rank_globals) + 1, dtype=np.int64)
        parts: List[np.ndarray] = []
        for r, globals_ in enumerate(per_rank_globals):
            arr = np.asarray(globals_, dtype=np.int64)
            if arr.ndim != 1:
                raise ConfigurationError("per-rank global id arrays must be 1-D")
            parts.append(arr)
            self.offsets[r + 1] = self.offsets[r] + arr.size
        self.table = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        # A global id must appear exactly once across all ranks.
        if self.table.size:
            uniq = np.unique(self.table)
            if uniq.size != self.table.size:
                raise PartitionError("mapping table contains duplicate global ids")

    @classmethod
    def from_assignment(
        cls,
        assignment: PartitionAssignment,
        grouped_to_global: np.ndarray,
    ) -> "MappingTable":
        """Build from a partition assignment.

        ``grouped_to_global[k]`` is the global peptide id of
        grouped-order position ``k`` (the grouping's ``order`` array).
        Local ids on each rank follow ascending grouped-order position,
        matching the order in which ranks extract their partition while
        scanning the clustered database (Section III-D).
        """
        if grouped_to_global.size != assignment.n_items:
            raise PartitionError(
                f"assignment covers {assignment.n_items} items but "
                f"{grouped_to_global.size} global ids were provided"
            )
        per_rank = [
            np.asarray(grouped_to_global)[assignment.members(rank)]
            for rank in range(assignment.n_ranks)
        ]
        return cls(per_rank)

    @property
    def n_ranks(self) -> int:
        """Number of ranks covered."""
        return int(self.offsets.size - 1)

    @property
    def n_entries(self) -> int:
        """Total mapped entries N."""
        return int(self.table.size)

    def rank_size(self, rank: int) -> int:
        """Number of entries owned by ``rank``."""
        self._check_rank(rank)
        return int(self.offsets[rank + 1] - self.offsets[rank])

    def to_global(self, rank: int, local_id: int) -> int:
        """Resolve one (rank, local id) pair — a single array access."""
        self._check_rank(rank)
        if not 0 <= local_id < self.rank_size(rank):
            raise PartitionError(
                f"local id {local_id} outside rank {rank}'s "
                f"{self.rank_size(rank)} entries"
            )
        return int(self.table[self.offsets[rank] + local_id])

    def to_global_batch(self, rank: int, local_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`to_global` for result merging."""
        self._check_rank(rank)
        local_ids = np.asarray(local_ids, dtype=np.int64)
        size = self.rank_size(rank)
        if local_ids.size and (local_ids.min() < 0 or local_ids.max() >= size):
            raise PartitionError(
                f"local ids outside rank {rank}'s {size} entries"
            )
        return self.table[self.offsets[rank] + local_ids]

    def globals_of(self, rank: int) -> np.ndarray:
        """All global ids of ``rank`` in local-id order (a view)."""
        self._check_rank(rank)
        return self.table[self.offsets[rank] : self.offsets[rank + 1]]

    def nbytes(self) -> int:
        """Master-side bytes at the original's 4-byte entry width."""
        return 4 * self.n_entries + 4 * (self.n_ranks + 1)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ConfigurationError(f"rank {rank} outside [0, {self.n_ranks})")
