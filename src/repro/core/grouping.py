"""Peptide sequence grouping — Algorithm 1 of the paper.

The sequences are sorted by length, then lexicographically; groups are
formed greedily: the first ungrouped sequence seeds a group, and each
subsequent sequence joins while it stays within an edit-distance cutoff
of the *seed* and the group is below the size cap ``gsize``.

Two cutoff criteria are provided (Section III-C.1):

* **criterion 1**: ``EditDistance(seed, s) <= max(d, len(s) / 2)``
  with default ``d = 2``;
* **criterion 2**: ``EditDistance(seed, s) / max(len(seed), len(s))
  <= d'`` with default ``d' = 0.86`` — the criterion the paper's
  experiments use.

Grouping never reorders *within* the sorted order: a group is a
contiguous run of the sorted sequence list, which is what lets the
output be written as a "clustered FASTA" and partitioned by run-length
(`group_sizes`) alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.constants import (
    DEFAULT_EDIT_DISTANCE,
    DEFAULT_GROUP_SIZE,
    DEFAULT_NORMALIZED_CUTOFF,
)
from repro.core.editdist import bounded_edit_distance
from repro.errors import ConfigurationError, PartitionError

__all__ = ["GroupingConfig", "Grouping", "group_peptides", "sorted_order"]


@dataclass(frozen=True, slots=True)
class GroupingConfig:
    """Parameters of Algorithm 1.

    Attributes
    ----------
    criterion:
        1 or 2 (see module docstring).  The paper evaluates with 2.
    d:
        Absolute edit-distance floor of criterion 1.
    d_prime:
        Normalized cutoff of criterion 2, in [0, 1].
    gsize:
        Maximum sequences per group (``csize`` in Algorithm 1).
    """

    criterion: int = 2
    d: int = DEFAULT_EDIT_DISTANCE
    d_prime: float = DEFAULT_NORMALIZED_CUTOFF
    gsize: int = DEFAULT_GROUP_SIZE

    def __post_init__(self) -> None:
        if self.criterion not in (1, 2):
            raise ConfigurationError(f"criterion must be 1 or 2, got {self.criterion}")
        if self.d < 0:
            raise ConfigurationError(f"d must be >= 0, got {self.d}")
        if not 0.0 <= self.d_prime <= 1.0:
            raise ConfigurationError(f"d_prime must be in [0,1], got {self.d_prime}")
        if self.gsize < 1:
            raise ConfigurationError(f"gsize must be >= 1, got {self.gsize}")

    def cutoff_for(self, seed: str, candidate: str) -> int:
        """The integral edit-distance bound for ``candidate`` vs ``seed``."""
        if self.criterion == 1:
            return max(self.d, len(candidate) // 2)
        return int(self.d_prime * max(len(seed), len(candidate)))


@dataclass(frozen=True, slots=True)
class Grouping:
    """Result of Algorithm 1.

    Attributes
    ----------
    order:
        Permutation of input positions: ``order[k]`` is the input index
        of the k-th sequence in grouped (sorted) order.
    group_sizes:
        Run lengths of consecutive groups over the grouped order.
    """

    order: np.ndarray
    group_sizes: np.ndarray

    def __post_init__(self) -> None:
        if int(self.group_sizes.sum()) != int(self.order.size):
            raise PartitionError(
                f"group sizes sum to {int(self.group_sizes.sum())} "
                f"but order has {self.order.size} entries"
            )
        if self.group_sizes.size and int(self.group_sizes.min()) < 1:
            raise PartitionError("every group must be non-empty")

    @property
    def n_groups(self) -> int:
        """Number of groups."""
        return int(self.group_sizes.size)

    @property
    def n_sequences(self) -> int:
        """Number of grouped sequences."""
        return int(self.order.size)

    def group_bounds(self) -> np.ndarray:
        """Exclusive prefix sums: group g spans [bounds[g], bounds[g+1])."""
        bounds = np.zeros(self.n_groups + 1, dtype=np.int64)
        np.cumsum(self.group_sizes, out=bounds[1:])
        return bounds

    def group_of(self) -> np.ndarray:
        """Array mapping grouped-order position → group id."""
        return np.repeat(np.arange(self.n_groups, dtype=np.int64), self.group_sizes)


def sorted_order(sequences: Sequence[str]) -> np.ndarray:
    """Positions of ``sequences`` sorted by (length, lexicographic).

    This is the "SortByLength / LexSort" preamble of Algorithm 1.  The
    sort is stable, so ties keep input order (determinism).
    """
    return np.array(
        sorted(range(len(sequences)), key=lambda i: (len(sequences[i]), sequences[i])),
        dtype=np.int64,
    )


def group_peptides(
    sequences: Sequence[str],
    config: GroupingConfig = GroupingConfig(),
) -> Grouping:
    """Run Algorithm 1 over ``sequences``.

    Returns a :class:`Grouping`; ``sequences`` itself is not reordered.
    Complexity is O(n · cost(edit distance to seed)) — each sequence is
    compared against its current group seed exactly once, as in the
    paper's pseudo-code.
    """
    n = len(sequences)
    if n == 0:
        return Grouping(
            order=np.empty(0, dtype=np.int64),
            group_sizes=np.empty(0, dtype=np.int64),
        )
    order = sorted_order(sequences)
    group_sizes: List[int] = [1]
    seed = sequences[int(order[0])]
    for k in range(1, n):
        seq = sequences[int(order[k])]
        cutoff = config.cutoff_for(seed, seq)
        dist = bounded_edit_distance(seed, seq, cutoff)
        if dist > cutoff or group_sizes[-1] == config.gsize:
            seed = seq
            group_sizes.append(1)
        else:
            group_sizes[-1] += 1
    return Grouping(order=order, group_sizes=np.asarray(group_sizes, dtype=np.int64))
