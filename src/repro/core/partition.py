"""Data distribution policies — Section III-D of the paper.

A policy assigns every position of the *grouped order* (the output of
Algorithm 1) to one of ``p`` ranks:

* :class:`ChunkPolicy` — the conventional scheme: split the grouped
  order into ``p`` contiguous blocks.  Keeps similarity neighbourhoods
  on single ranks → imbalanced querying (paper Fig. 2).
* :class:`CyclicPolicy` — round-robin *within each group*.  The
  paper's formula (``i mod m = 0``) is a typo for round-robin; we
  continue the robin across group boundaries so partial groups do not
  systematically favour rank 0 (within any single group the assignment
  is still a perfect round-robin).
* :class:`RandomPolicy` — per-group shuffle, then chunk-split the
  shuffled group ("shuffled and split using the Chunk policy"); the
  split's rank offset rotates across groups so small groups spread.

Every policy returns a :class:`PartitionAssignment`, which validates
that the assignment is a disjoint cover and offers balance statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Type

import numpy as np

from repro.core.grouping import Grouping
from repro.errors import ConfigurationError, PartitionError
from repro.util.rng import rng_from

__all__ = [
    "PartitionAssignment",
    "PartitionPolicy",
    "ChunkPolicy",
    "CyclicPolicy",
    "RandomPolicy",
    "make_policy",
    "POLICIES",
]


@dataclass(frozen=True, slots=True)
class PartitionAssignment:
    """Assignment of grouped-order positions to ranks.

    Attributes
    ----------
    rank_of:
        ``rank_of[k]`` = owning rank of grouped-order position ``k``.
    n_ranks:
        Number of ranks ``p``.
    policy_name:
        The generating policy (for reporting).
    """

    rank_of: np.ndarray
    n_ranks: int
    policy_name: str

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ConfigurationError(f"n_ranks must be >= 1, got {self.n_ranks}")
        if self.rank_of.size:
            lo, hi = int(self.rank_of.min()), int(self.rank_of.max())
            if lo < 0 or hi >= self.n_ranks:
                raise PartitionError(
                    f"rank assignment outside [0, {self.n_ranks}): [{lo}, {hi}]"
                )

    @property
    def n_items(self) -> int:
        """Number of assigned positions."""
        return int(self.rank_of.size)

    def members(self, rank: int) -> np.ndarray:
        """Grouped-order positions owned by ``rank`` (ascending)."""
        if not 0 <= rank < self.n_ranks:
            raise ConfigurationError(f"rank {rank} outside [0, {self.n_ranks})")
        return np.flatnonzero(self.rank_of == rank)

    def counts(self) -> np.ndarray:
        """Items per rank, length ``n_ranks``."""
        return np.bincount(self.rank_of, minlength=self.n_ranks).astype(np.int64)

    def count_imbalance(self) -> float:
        """(max - mean) / mean of per-rank item counts (0 when empty)."""
        counts = self.counts()
        mean = counts.mean() if counts.size else 0.0
        if mean == 0:
            return 0.0
        return float((counts.max() - mean) / mean)

    def per_group_spread(self, grouping: Grouping) -> np.ndarray:
        """Distinct ranks touched by each group.

        Fine-grained policies score close to ``min(group size, p)``;
        Chunk scores close to 1.  Used by the ablation benchmarks.
        """
        bounds = grouping.group_bounds()
        out = np.zeros(grouping.n_groups, dtype=np.int64)
        for g in range(grouping.n_groups):
            out[g] = np.unique(self.rank_of[bounds[g] : bounds[g + 1]]).size
        return out


class PartitionPolicy:
    """Base class; subclasses implement :meth:`assign`."""

    #: Registry/reporting name, set by subclasses.
    name: str = "abstract"

    def assign(self, grouping: Grouping, n_ranks: int) -> PartitionAssignment:
        """Assign every grouped-order position to a rank."""
        raise NotImplementedError

    @staticmethod
    def _check(n_ranks: int) -> None:
        if n_ranks < 1:
            raise ConfigurationError(f"n_ranks must be >= 1, got {n_ranks}")


class ChunkPolicy(PartitionPolicy):
    """Conventional contiguous split (paper Section III-D.1).

    ``pep(m) = { i | N/p * m <= i < N/p * (m+1) }`` with the remainder
    spread one-per-rank over the leading ranks so sizes differ by at
    most one.
    """

    name = "chunk"

    def assign(self, grouping: Grouping, n_ranks: int) -> PartitionAssignment:
        self._check(n_ranks)
        n = grouping.n_sequences
        base, extra = divmod(n, n_ranks)
        sizes = np.full(n_ranks, base, dtype=np.int64)
        sizes[:extra] += 1
        rank_of = np.repeat(np.arange(n_ranks, dtype=np.int32), sizes)
        return PartitionAssignment(rank_of=rank_of, n_ranks=n_ranks, policy_name=self.name)


class CyclicPolicy(PartitionPolicy):
    """Round-robin within groups (paper Section III-D.2).

    The robin counter continues across group boundaries, so every
    group's members land on consecutive distinct ranks and global
    per-rank counts differ by at most one.
    """

    name = "cyclic"

    def assign(self, grouping: Grouping, n_ranks: int) -> PartitionAssignment:
        self._check(n_ranks)
        n = grouping.n_sequences
        rank_of = (np.arange(n, dtype=np.int64) % n_ranks).astype(np.int32)
        return PartitionAssignment(rank_of=rank_of, n_ranks=n_ranks, policy_name=self.name)


class RandomPolicy(PartitionPolicy):
    """Per-group shuffle + chunk split (paper Section III-D.3).

    Each group's members are shuffled, split into ``p`` near-equal
    chunks, and chunk ``j`` goes to rank ``(j + offset) mod p`` where
    ``offset`` rotates per group.  "The quality of distribution may
    depend on initial choice of seed value" — the seed is explicit.
    """

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def assign(self, grouping: Grouping, n_ranks: int) -> PartitionAssignment:
        self._check(n_ranks)
        n = grouping.n_sequences
        rank_of = np.empty(n, dtype=np.int32)
        rng = rng_from(self.seed, "random-policy")
        bounds = grouping.group_bounds()
        for g in range(grouping.n_groups):
            lo, hi = int(bounds[g]), int(bounds[g + 1])
            size = hi - lo
            positions = lo + rng.permutation(size)
            base, extra = divmod(size, n_ranks)
            chunk_sizes = np.full(n_ranks, base, dtype=np.int64)
            chunk_sizes[:extra] += 1
            ranks = (np.arange(n_ranks) + g) % n_ranks
            rank_of[positions] = np.repeat(ranks, chunk_sizes).astype(np.int32)
        return PartitionAssignment(rank_of=rank_of, n_ranks=n_ranks, policy_name=self.name)


#: Registry of available policies by name.  ``lpt`` (the predictive,
#: heterogeneity-aware policy of :mod:`repro.core.predict`) registers
#: itself on import to avoid a circular dependency.
POLICIES: Dict[str, Type[PartitionPolicy]] = {
    ChunkPolicy.name: ChunkPolicy,
    CyclicPolicy.name: CyclicPolicy,
    RandomPolicy.name: RandomPolicy,
}


def make_policy(name: str, *, seed: int = 0, **kwargs) -> PartitionPolicy:
    """Instantiate a policy by name.

    ``chunk`` / ``cyclic`` take no parameters; ``random`` takes
    ``seed``; ``lpt`` accepts ``weights`` and ``speeds`` (see
    :class:`repro.core.predict.PredictivePolicy`).
    """
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; available: {sorted(POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return RandomPolicy(seed=seed, **kwargs)
    if cls.name == "lpt":
        return cls(**kwargs)
    return cls()
