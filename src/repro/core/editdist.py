"""Levenshtein edit distance with banding and early exit.

Algorithm 1 compares every sequence against the current group seed, so
edit distance dominates grouping cost.  Two facts bound the work:

* group membership only needs the distance *up to a cutoff* — anything
  larger starts a new group regardless of its exact value;
* if ``|len(a) - len(b)| > bound`` the distance certainly exceeds the
  bound (each length difference costs at least one edit).

:func:`bounded_edit_distance` exploits both with the classic banded
dynamic program: only cells within ``bound`` of the diagonal are
evaluated (O(min(n,m)·bound) time) and the scan exits as soon as a full
row exceeds the bound.
"""

from __future__ import annotations

__all__ = ["edit_distance", "bounded_edit_distance"]


def edit_distance(a: str, b: str) -> int:
    """Exact Levenshtein distance between ``a`` and ``b``.

    Two-row dynamic program, O(len(a)·len(b)) time, O(min) space.
    """
    if a == b:
        return 0
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + cost,  # substitution / match
            )
        previous = current
    return previous[-1]


def bounded_edit_distance(a: str, b: str, bound: int) -> int:
    """Levenshtein distance capped at ``bound``.

    Returns the exact distance when it is ``<= bound`` and ``bound + 1``
    otherwise (a "greater than bound" sentinel).  ``bound < 0`` returns
    ``bound + 1`` immediately (nothing can satisfy a negative bound).

    The band around the diagonal has half-width ``bound``; cells
    outside it can never contribute to a path of cost ``<= bound``.
    """
    if bound < 0:
        return bound + 1
    if a == b:
        return 0
    n, m = len(a), len(b)
    if abs(n - m) > bound:
        return bound + 1
    if n < m:  # keep the outer loop over the longer string
        a, b, n, m = b, a, m, n
    if m == 0:
        return n if n <= bound else bound + 1
    big = bound + 1
    previous = [j if j <= bound else big for j in range(m + 1)]
    for i in range(1, n + 1):
        ca = a[i - 1]
        # Band: |i - j| <= bound  =>  j in [i - bound, i + bound].
        j_lo = max(1, i - bound)
        j_hi = min(m, i + bound)
        current = [big] * (m + 1)
        current[0] = i if i <= bound else big
        row_min = current[0] if j_lo == 1 else big
        for j in range(j_lo, j_hi + 1):
            cb = b[j - 1]
            cost = 0 if ca == cb else 1
            best = previous[j - 1] + cost
            above = previous[j] + 1
            if above < best:
                best = above
            left = current[j - 1] + 1
            if left < best:
                best = left
            if best > big:
                best = big
            current[j] = best
            if best < row_min:
                row_min = best
        if row_min > bound:
            return big
        previous = current
    result = previous[m]
    return result if result <= bound else big
