"""Command-line interface: the LBDSLIM-style end-user tool.

Subcommands mirror the paper's toolchain stages::

    python -m repro generate --out-dir data/           # proteome.fasta + run.ms2
    python -m repro digest   --fasta data/proteome.fasta --out data/peptides.fasta
    python -m repro group    --fasta data/peptides.fasta --out data/clustered.fasta
    python -m repro search   --fasta data/proteome.fasta --ms2 data/run.ms2 \\
                             --ranks 8 --policy cyclic --report data/psms.tsv
    python -m repro index    --fasta data/proteome.fasta --out data/index.npz
    python -m repro serve    --fasta data/proteome.fasta --ranks 2 \\
                             --batch data/run.ms2 --batch data/run2.ms2
    python -m repro trace analyze data/trace.jsonl       # timeline analysis
    python -m repro trace gantt   data/trace.jsonl       # ASCII timelines
    python -m repro trace diff    data/a.jsonl data/b.jsonl
    python -m repro figures --sizes 18 30 --spectra 60  # quick figure tables

Every command is deterministic under ``--seed`` and prints a short
summary table; ``search`` additionally reports per-policy load
imbalance when ``--compare-policies`` is set, and runs on real OS
worker processes over a memmap-shared arena (real wall-clock times,
identical results) with ``--backend process``.  ``serve`` keeps those
workers *resident* across an unbounded stream of query batches (MS2
paths via ``--batch``, or newline-separated on stdin) and prints
per-batch latency and scatter accounting; ``--pipeline`` drives the
stream through the service's overlapped session (preprocess batch N+1
while the workers query batch N — identical results, higher
throughput), and ``--index`` starts the session from a serialized
archive (``repro index``) instead of re-digesting the FASTA.

``trace`` is the consume side of the telemetry stack: ``analyze``
reconstructs per-batch timelines (stage breakdown, per-rank
utilization, overlap efficiency, critical path, recomputed Eq.-1 LI)
from a recorded trace — a ``--trace`` file or a flight-recorder black
box; ``gantt`` renders the timelines as ASCII charts; ``diff``
attributes a latency regression between two traces to stages/ranks.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import ExitStack
from pathlib import Path
from typing import List, Sequence

from repro.bench.experiments import ExperimentConfig, ExperimentSuite
from repro.bench.reporting import series_table
from repro.core.grouping import GroupingConfig, group_peptides
from repro.db.dedup import deduplicate_peptides
from repro.db.digest import DigestionConfig, digest_proteome
from repro.db.fasta import FastaRecord, read_fasta, write_fasta, write_grouped_fasta
from repro.db.proteome import ProteomeConfig, generate_proteome
from repro.chem.peptide import Peptide
from repro.errors import (
    ConfigurationError,
    ServiceError,
    ShardError,
    WorkerError,
)
from repro.index.serialize import load_index, save_index
from repro.index.slm import SLMIndex, SLMIndexSettings
from repro.obs import (
    NULL_TRACER,
    JsonlTracer,
    MetricsRegistry,
    analyze_trace,
    diff_traces,
    load_trace,
    render_analysis,
    render_diff,
    render_gantt,
    validate_trace_file,
)
from repro.parallel import ParallelEngineConfig, ParallelSearchEngine
from repro.search.database import IndexedDatabase
from repro.search.engine import DistributedSearchEngine, EngineConfig
from repro.search.metrics import load_imbalance
from repro.search.report import write_psm_report
from repro.service import (
    SearchService,
    ServiceConfig,
    ShardedSearchService,
    aggregate_batch_stats,
)
from repro.spectra.ms2 import read_ms2, write_ms2
from repro.spectra.synthetic import SyntheticRunConfig, generate_run
from repro.util.tables import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LBE distributed peptide search (IPDPSW 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic proteome + MS2 run")
    gen.add_argument("--out-dir", type=Path, required=True)
    gen.add_argument("--families", type=int, default=20)
    gen.add_argument("--spectra", type=int, default=100)
    gen.add_argument("--seed", type=int, default=7)

    dig = sub.add_parser("digest", help="tryptic digestion of a protein FASTA")
    dig.add_argument("--fasta", type=Path, required=True)
    dig.add_argument("--out", type=Path, required=True)
    dig.add_argument("--missed-cleavages", type=int, default=2)
    dig.add_argument("--min-length", type=int, default=6)
    dig.add_argument("--max-length", type=int, default=40)

    grp = sub.add_parser("group", help="Algorithm 1: write a clustered FASTA")
    grp.add_argument("--fasta", type=Path, required=True,
                     help="peptide FASTA (digest output)")
    grp.add_argument("--out", type=Path, required=True)
    grp.add_argument("--criterion", type=int, choices=(1, 2), default=2)
    grp.add_argument("--gsize", type=int, default=20)

    srch = sub.add_parser("search", help="distributed search of an MS2 file")
    srch.add_argument("--fasta", type=Path, required=True,
                      help="protein FASTA to digest and index")
    srch.add_argument("--ms2", type=Path, required=True)
    srch.add_argument("--ranks", type=int, default=4)
    srch.add_argument("--backend", default="simulated",
                      choices=("simulated", "process"),
                      help="simulated = threads over the virtual-time "
                      "fabric (deterministic virtual seconds); process = "
                      "real OS workers over a memmap-shared arena (real "
                      "wall-clock seconds)")
    srch.add_argument("--policy", default="cyclic",
                      choices=("chunk", "cyclic", "random", "lpt"))
    srch.add_argument("--report", type=Path, default=None,
                      help="write PSMs as TSV to this path")
    srch.add_argument("--max-variants", type=int, default=8)
    srch.add_argument("--top-k", type=int, default=5)
    srch.add_argument("--compare-policies", action="store_true")
    srch.add_argument("--seed", type=int, default=0)

    idx = sub.add_parser(
        "index",
        help="build an SLM index and serialize it (memmap-ready archive)",
    )
    idx.add_argument("--fasta", type=Path, required=True,
                     help="protein FASTA to digest and index")
    idx.add_argument("--out", type=Path, required=True,
                     help="output .npz archive (uncompressed, so serve "
                     "--index can memory-map it)")
    idx.add_argument("--max-variants", type=int, default=8)

    srv = sub.add_parser(
        "serve",
        help="persistent search service over a stream of MS2 batches",
    )
    srv.add_argument("--fasta", type=Path, default=None,
                     help="protein FASTA to digest and index")
    srv.add_argument("--index", type=Path, default=None,
                     help="serialized index archive (repro index); starts "
                     "the session from the archive's peptide table — no "
                     "FASTA parse/digestion/variant enumeration (the "
                     "fragment arena is still built at open())")
    srv.add_argument("--pipeline", action="store_true",
                     help="drive the batches through the overlapped "
                     "pipelined session (preprocess batch N+1 while the "
                     "workers query batch N); identical results")
    srv.add_argument("--batch", type=Path, action="append", default=None,
                     help="MS2 file to submit as one batch (repeatable); "
                     "omitted = read newline-separated MS2 paths from stdin")
    srv.add_argument("--ranks", type=int, default=2)
    srv.add_argument("--backend", default="process", choices=("process",),
                     help="resident-worker backend (real OS processes over "
                     "memmap-shared arena + spectra stores)")
    srv.add_argument("--policy", default="cyclic",
                     choices=("chunk", "cyclic", "random", "lpt"))
    srv.add_argument("--report-dir", type=Path, default=None,
                     help="write each batch's PSMs as TSV under this dir")
    srv.add_argument("--max-variants", type=int, default=8)
    srv.add_argument("--top-k", type=int, default=5)
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument("--max-retries", type=int, default=1,
                     help="per-rank retry budget: respawn + re-dispatch a "
                     "crashed/hung rank's task up to this many times per "
                     "batch before the batch fails (0 = fail on first "
                     "fault, the library default)")
    srv.add_argument("--degraded-ok", action="store_true",
                     help="after a rank's retries are exhausted, return "
                     "the batch's partial results (explicit "
                     "degraded-coverage mask in the report) instead of "
                     "failing the batch")
    srv.add_argument("--hedge-after", type=float, default=None,
                     metavar="SECONDS",
                     help="straggler hedging: if a rank's query round "
                     "exceeds this soft deadline, speculatively re-run "
                     "its task on a fresh worker and take the first "
                     "answer (default: off)")
    srv.add_argument("--rebalance-li", type=float, default=None,
                     metavar="LI",
                     help="arm elastic self-rebalancing: when a sliding "
                     "window of batches sustains this Eq.-1 load "
                     "imbalance (or a rank is chronically slow), "
                     "re-plan with observed per-rank speed weights and "
                     "migrate the session between rounds — results stay "
                     "bit-identical (default: off)")
    srv.add_argument("--rebalance-window", type=int, default=4,
                     metavar="BATCHES",
                     help="batches per rebalance decision window "
                     "(default 4); the trigger judges window means, "
                     "never single batches")
    srv.add_argument("--min-workers", type=int, default=None,
                     help="lower pool-size bound for elastic scaling "
                     "(default: pin at --ranks)")
    srv.add_argument("--max-workers", type=int, default=None,
                     help="upper pool-size bound for elastic scaling: "
                     "sustained imbalance that re-weighting cannot fix "
                     "grows the pool up to this (default: pin at "
                     "--ranks)")
    srv.add_argument("--shards", type=int, default=1,
                     help="cut the database into this many contiguous "
                     "precursor-mass shards, each with its own resident "
                     "pool of --ranks workers; batches are routed only "
                     "to shards their precursor windows can reach "
                     "(default 1 = unsharded session)")
    srv.add_argument("--shard-boundaries", type=float, nargs="+",
                     default=None, metavar="DA",
                     help="explicit shard boundary masses in Da "
                     "(ascending, one fewer than --shards); default "
                     "balances shards by entry count")
    srv.add_argument("--trace", type=Path, default=None, metavar="FILE",
                     help="export a structured JSONL trace of the "
                     "session to FILE: spans for every pipeline stage "
                     "(prepare/spill/dispatch/worker.query per rank/"
                     "collect/merge, shard route/demux) and events for "
                     "every supervision transition (retry, backoff, "
                     "respawn, hedge, degraded); validate with "
                     "python -m repro.obs.schema FILE (default: off, "
                     "zero-cost no-op tracer)")
    srv.add_argument("--metrics-out", type=Path, default=None, metavar="FILE",
                     help="dump the session's MetricsRegistry snapshot "
                     "(counters, gauges, latency histogram quantiles) as "
                     "JSON to FILE at session close — machine-readable "
                     "steady-state numbers without a trace")
    srv.add_argument("--flight-dir", type=Path, default=None, metavar="DIR",
                     help="directory the flight recorder dumps its "
                     "black-box JSONL into when a worker/shard error "
                     "surfaces or a batch degrades (default: the system "
                     "temp dir); the recorder is always on unless "
                     "--no-flight-recorder or --trace is given")
    srv.add_argument("--no-flight-recorder", action="store_true",
                     help="disable the always-on in-memory flight "
                     "recorder (no black-box dumps on failures)")

    trc = sub.add_parser(
        "trace",
        help="analyze recorded JSONL traces (serve --trace files or "
        "flight-recorder black boxes)",
    )
    trc_sub = trc.add_subparsers(dest="trace_command", required=True)
    trc_an = trc_sub.add_parser(
        "analyze",
        help="per-batch timelines: stage breakdown, per-rank "
        "utilization, overlap efficiency, critical path, recomputed "
        "Eq.-1 load imbalance",
    )
    trc_an.add_argument("file", type=Path)
    trc_an.add_argument("--shard", type=int, default=None,
                        help="analyze only this shard's records of a "
                        "fleet trace, as a standalone session")
    trc_ga = trc_sub.add_parser(
        "gantt", help="ASCII per-batch span timelines"
    )
    trc_ga.add_argument("file", type=Path)
    trc_ga.add_argument("--batch", type=int, default=None,
                        help="render only this batch")
    trc_ga.add_argument("--width", type=int, default=64)
    trc_ga.add_argument("--shard", type=int, default=None,
                        help="chart only this shard's records of a "
                        "fleet trace")
    trc_di = trc_sub.add_parser(
        "diff",
        help="attribute the latency difference between two traces "
        "(B vs A) to stages and ranks",
    )
    trc_di.add_argument("file_a", type=Path)
    trc_di.add_argument("file_b", type=Path)
    trc_di.add_argument("--shard", type=int, default=None)

    figs = sub.add_parser("figures", help="print quick figure tables")
    figs.add_argument("--sizes", type=float, nargs="+", default=[18.0, 49.45])
    figs.add_argument("--spectra", type=int, default=60)
    figs.add_argument("--seed", type=int, default=29)

    return parser


def _build_database(fasta: Path, max_variants: int) -> IndexedDatabase:
    """The FASTA → digest → dedup → variant-expansion build, shared by
    every command that indexes a proteome (`search`, `index`, `serve`)."""
    records = list(read_fasta(fasta))
    peptides = deduplicate_peptides(digest_proteome(records))
    return IndexedDatabase.from_peptides(
        peptides, max_variants_per_peptide=max_variants
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    args.out_dir.mkdir(parents=True, exist_ok=True)
    proteome = generate_proteome(
        ProteomeConfig(n_families=args.families, seed=args.seed)
    )
    fasta_path = args.out_dir / "proteome.fasta"
    write_fasta(fasta_path, proteome.records)

    peptides = deduplicate_peptides(digest_proteome(proteome.records))
    db = IndexedDatabase.from_peptides(peptides, max_variants_per_peptide=8)
    spectra = generate_run(
        db.entries, SyntheticRunConfig(n_spectra=args.spectra, seed=args.seed + 1)
    )
    ms2_path = args.out_dir / "run.ms2"
    write_ms2(ms2_path, spectra)
    print(f"wrote {len(proteome.records)} proteins -> {fasta_path}")
    print(f"wrote {len(spectra)} spectra -> {ms2_path}")
    return 0


def _cmd_digest(args: argparse.Namespace) -> int:
    records = list(read_fasta(args.fasta))
    config = DigestionConfig(
        missed_cleavages=args.missed_cleavages,
        min_length=args.min_length,
        max_length=args.max_length,
    )
    peptides = deduplicate_peptides(digest_proteome(records, config))
    write_fasta(
        args.out,
        (FastaRecord(f"pep{i}", p.sequence) for i, p in enumerate(peptides)),
    )
    print(f"digested {len(records)} proteins -> {len(peptides)} unique "
          f"peptides -> {args.out}")
    return 0


def _cmd_group(args: argparse.Namespace) -> int:
    sequences = [rec.sequence for rec in read_fasta(args.fasta)]
    grouping = group_peptides(
        sequences, GroupingConfig(criterion=args.criterion, gsize=args.gsize)
    )
    write_grouped_fasta(
        args.out,
        [sequences[i] for i in grouping.order],
        grouping.group_sizes.tolist(),
    )
    print(f"grouped {grouping.n_sequences} peptides into "
          f"{grouping.n_groups} groups -> {args.out}")
    return 0


def _search_once(
    db: IndexedDatabase,
    spectra,
    policy: str,
    args: argparse.Namespace,
):
    if getattr(args, "backend", "simulated") == "process":
        engine = ParallelSearchEngine(
            db,
            ParallelEngineConfig(
                n_workers=args.ranks,
                policy=policy,
                policy_seed=args.seed,
                top_k=args.top_k,
            ),
        )
        return engine.run(spectra)
    engine = DistributedSearchEngine(
        db,
        EngineConfig(
            n_ranks=args.ranks,
            policy=policy,
            policy_seed=args.seed,
            top_k=args.top_k,
        ),
    )
    return engine.run(spectra)


def _cmd_search(args: argparse.Namespace) -> int:
    db = _build_database(args.fasta, args.max_variants)
    spectra = list(read_ms2(args.ms2))
    clock = "real" if args.backend == "process" else "virtual"
    print(f"index: {db.n_entries} entries from {db.n_bases} peptides; "
          f"queries: {len(spectra)} spectra; ranks: {args.ranks}; "
          f"backend: {args.backend}")

    results = _search_once(db, spectra, args.policy, args)
    print(
        f"policy {args.policy}: {results.total_cpsms} cPSMs "
        f"({results.cpsms_per_query:.0f}/query), "
        f"LI {100 * load_imbalance(results.query_times):.1f}%, "
        f"query {results.query_time * 1e3:.2f} ms, "
        f"total {results.execution_time * 1e3:.2f} ms ({clock})"
    )
    if args.report is not None:
        rows = write_psm_report(args.report, results, db.entries)
        print(f"wrote {rows} PSM rows -> {args.report}")

    if args.compare_policies:
        rows = []
        for policy in ("chunk", "cyclic", "random", "lpt"):
            res = (
                results if policy == args.policy
                else _search_once(db, spectra, policy, args)
            )
            rows.append(
                (
                    policy,
                    f"{100 * load_imbalance(res.query_times):.1f}%",
                    f"{res.query_time * 1e3:.2f}",
                    f"{res.execution_time * 1e3:.2f}",
                )
            )
        print()
        print(format_table(
            ["policy", "LI", "query ms", "total ms"], rows,
            title=f"policy comparison, {args.ranks} ranks",
        ))
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    db = _build_database(args.fasta, args.max_variants)
    settings = SLMIndexSettings()
    index = SLMIndex(
        db.entries, settings, arena=db.arena_for(settings.fragmentation)
    )
    save_index(args.out, index, compress=False)
    print(
        f"indexed {db.n_entries} entries ({index.n_ions} ions) from "
        f"{db.n_bases} peptides -> {args.out} (uncompressed, memmap-ready)"
    )
    return 0


def _serve_database(args: argparse.Namespace):
    """Resolve the serve session's database + index settings source."""
    if (args.fasta is None) == (args.index is None):
        raise SystemExit(
            "serve: supply exactly one of --fasta or --index"
        )
    if args.index is not None:
        # mmap_mode="r" keeps the archive's flat index arrays out of
        # private memory while the peptide table is materialized; the
        # session skips FASTA parsing, digestion, deduplication and
        # variant enumeration.  The fragment arena is still generated
        # from the peptide table at open() — the archive stores the
        # built index's CSR, not the arena (see the ROADMAP open item).
        index = load_index(args.index, mmap_mode="r")
        return IndexedDatabase.from_index_entries(index.peptides), index.settings
    return _build_database(args.fasta, args.max_variants), SLMIndexSettings()


def _cmd_serve(args: argparse.Namespace) -> int:
    db, index_settings = _serve_database(args)
    batch_paths = (
        list(args.batch)
        if args.batch
        else [Path(line.strip()) for line in sys.stdin if line.strip()]
    )
    if not batch_paths:
        print("serve: no batches (pass --batch or pipe MS2 paths on stdin)",
              file=sys.stderr)
        return 2
    if args.report_dir is not None:
        args.report_dir.mkdir(parents=True, exist_ok=True)

    # One registry per serve invocation: the summary lines below read
    # live p50/p95/LI out of it, so it must not be polluted by other
    # sessions sharing the process-wide default registry.
    metrics = MetricsRegistry()
    tracer = (
        JsonlTracer(args.trace) if args.trace is not None else NULL_TRACER
    )
    config = ServiceConfig(
        n_workers=args.ranks,
        policy=args.policy,
        policy_seed=args.seed,
        top_k=args.top_k,
        index=index_settings,
        max_retries=args.max_retries,
        degraded_ok=args.degraded_ok,
        hedge_after=args.hedge_after,
        tracer=tracer,
        metrics=metrics,
        flight_recorder=not args.no_flight_recorder,
        flight_dir=args.flight_dir,
        rebalance_li=args.rebalance_li,
        rebalance_window=args.rebalance_window,
        min_workers=args.min_workers,
        max_workers=args.max_workers,
    )
    source = "index archive" if args.index is not None else "FASTA"
    mode = "pipelined" if args.pipeline else "sequential"
    sharded = args.shards > 1 or args.shard_boundaries is not None
    if args.shards < 1:
        raise SystemExit("serve: --shards must be >= 1")
    if sharded:
        service_cm = ShardedSearchService(
            db, config,
            n_shards=args.shards,
            boundaries=args.shard_boundaries,
        )
        topology = (
            f"{args.shards} mass-range shards x {args.ranks} resident "
            f"workers"
        )
    else:
        service_cm = SearchService(db, config)
        topology = f"{args.ranks} resident workers"
    with ExitStack() as stack:
        # LIFO: the service closes first (emitting its session.close
        # event), then the tracer flushes and releases the file —
        # including when a batch fails and the error propagates.
        stack.callback(tracer.close)
        service = stack.enter_context(service_cm)
        print(
            f"session: {db.n_entries} entries (from {source}), "
            f"{topology}, policy {args.policy}, "
            f"backend {args.backend}, {mode} submits; "
            f"open {service.open_s:.2f} s "
            f"(spawn + arena spill + attach, paid once)"
        )
        if args.pipeline:
            # The streaming driver keeps up to max_pending batches in
            # the pipeline; MS2 parsing of batch N+1 also overlaps the
            # workers' round for batch N through the lazy generator.
            outcomes = service.stream(
                list(read_ms2(path)) for path in batch_paths
            )
        else:
            outcomes = (
                service.submit(list(read_ms2(path))) for path in batch_paths
            )
        rows = []
        for i, (path, (results, stats)) in enumerate(
            zip(batch_paths, outcomes)
        ):
            row = [
                i,
                path.name,
                stats.n_spectra,
                results.total_cpsms,
                f"{stats.total_s * 1e3:.1f}",
                f"{stats.query_wall_max_s * 1e3:.1f}",
                f"{100 * stats.query_li:.1f}%",
                f"{stats.overlap_s * 1e3:.1f}",
                stats.scatter_bytes,
                stats.retries,
                stats.hedged,
                stats.respawned,
                ",".join(map(str, stats.degraded_ranks)) or "-",
            ]
            if sharded:
                row.append(f"{stats.shards_dispatched}/{stats.shards_skipped}")
                row.append(",".join(map(str, stats.degraded_shards)) or "-")
            rows.append(tuple(row))
            if args.report_dir is not None:
                report_path = args.report_dir / f"batch_{i:04d}.tsv"
                write_psm_report(report_path, results, db.entries)
        columns = ["batch", "file", "spectra", "cPSMs", "total ms",
                   "query ms", "LI", "overlap ms", "scatter B", "retries",
                   "hedged", "respawn", "degraded"]
        if sharded:
            columns += ["disp/skip", "deg shards"]
        print(format_table(
            columns,
            rows,
            title=f"session: {len(batch_paths)} batches on resident workers",
        ))
        all_stats = service.batch_stats
        session = aggregate_batch_stats(all_stats)
        if session.n_batches > 1:
            print(
                f"steady-state batch latency: "
                f"{1e3 * session.steady_batch_s:.1f} ms min, "
                f"{1e3 * session.p50_batch_s:.1f} ms p50, "
                f"{1e3 * session.p95_batch_s:.1f} ms p95 "
                f"(vs open cost {service.open_s * 1e3:.1f} ms, amortized "
                f"over {service.n_batches} batches)"
            )
        if all_stats:
            # The live gauge holds the *last* batch's LI exactly as the
            # registry saw it; mean/max come from the session aggregate
            # over the same per-rank query-wall vectors.
            li_gauge = metrics.gauge(
                "fleet.batch_li_wall" if sharded else "service.batch_li_wall"
            )
            print(
                f"load imbalance (Eq. 1): mean "
                f"{100 * session.query_li_mean:.1f}%, max "
                f"{100 * session.query_li_max:.1f}%, live gauge "
                f"{100 * li_gauge.value:.1f}% over {li_gauge.n_updates} "
                f"batches"
            )
        if args.rebalance_li is not None:
            workers_now = (
                service.n_workers_total if sharded else service.n_workers
            )
            print(
                f"rebalancing: {service.rebalance_total} migrations "
                f"(LI trigger {100 * args.rebalance_li:.0f}% over "
                f"{args.rebalance_window}-batch windows), "
                f"{workers_now} resident workers now"
            )
        if sharded and all_stats:
            total = service.shard_dispatch_total + service.shard_skip_total
            print(
                f"routing: {service.shard_dispatch_total}/{total} shard "
                f"dispatches sent, {service.shard_skip_total} skipped by "
                f"precursor-window routing"
            )
        if args.pipeline and session.n_batches:
            print(
                f"pipeline: depth up to {session.pipeline_depth_max}, "
                f"{1e3 * session.overlap_s_total:.1f} ms of master work "
                f"hidden behind worker rounds"
            )
        # Degraded batches black-boxed their last seconds; surface the
        # dump paths so the operator can repro trace analyze them.
        for stats in all_stats:
            if stats.flight_record:
                print(
                    f"flight record (degraded batch {stats.batch_index}): "
                    f"{stats.flight_record}"
                )
    if args.trace is not None:
        print(f"trace: {tracer.n_records} records -> {args.trace}")
    if args.metrics_out is not None:
        args.metrics_out.write_text(
            json.dumps(
                metrics.snapshot(), indent=2, sort_keys=True, default=str
            )
            + "\n",
            encoding="ascii",
        )
        print(f"metrics: registry snapshot -> {args.metrics_out}")
    return 0


def _validated_records(path: Path) -> List[dict]:
    """Load a trace for analysis, failing loud on schema violations."""
    n, errors = validate_trace_file(path)
    if errors:
        for e in errors[:10]:
            print(f"repro trace: {path}: {e}", file=sys.stderr)
        raise ConfigurationError(
            f"{path}: {len(errors)} schema violations in {n} records"
        )
    return load_trace(path)


def _cmd_trace(args: argparse.Namespace) -> int:
    try:
        if args.trace_command == "analyze":
            analysis = analyze_trace(
                _validated_records(args.file), shard=args.shard
            )
            print(render_analysis(analysis, source=str(args.file)))
        elif args.trace_command == "gantt":
            analysis = analyze_trace(
                _validated_records(args.file), shard=args.shard
            )
            print(render_gantt(
                analysis, batch=args.batch, width=args.width
            ))
        else:  # diff
            a = analyze_trace(
                _validated_records(args.file_a), shard=args.shard
            )
            b = analyze_trace(
                _validated_records(args.file_b), shard=args.shard
            )
            print(render_diff(
                diff_traces(a, b),
                a_name=args.file_a.name,
                b_name=args.file_b.name,
            ))
    except ConfigurationError as exc:
        print(f"repro trace: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"repro trace: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    suite = ExperimentSuite(
        ExperimentConfig(
            sizes_m=tuple(args.sizes), n_spectra=args.spectra, seed=args.seed
        )
    )
    print(series_table(
        "Fig. 6: load imbalance (16 ranks)",
        ["size_M", "entries", "policy", "LI_%"],
        suite.fig6_rows(), float_fmt=".1f",
    ))
    print(series_table(
        "Fig. 8: query speedup (cyclic)",
        ["size_M", "ranks", "speedup", "ideal"],
        suite.fig8_rows(), float_fmt=".2f",
    ))
    print(series_table(
        "Fig. 11: CPU-time speedup over chunk (16 ranks)",
        ["size_M", "policy", "speedup", "Twst_s"],
        suite.fig11_rows(), float_fmt=".2f",
    ))
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "digest": _cmd_digest,
    "group": _cmd_group,
    "search": _cmd_search,
    "index": _cmd_index,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "figures": _cmd_figures,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Worker and service failures reaching this level are user-facing
    operational faults, not programming errors: they print a one-line
    diagnosis (rank, exit code, retry count) to stderr and exit
    nonzero instead of dumping a traceback.  Everything else — actual
    bugs — still propagates with a full traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except WorkerError as exc:
        print(f"repro {args.command}: {exc.brief}", file=sys.stderr)
        return 1
    except ShardError as exc:
        print(f"repro {args.command}: {exc.brief}", file=sys.stderr)
        return 1
    except ServiceError as exc:
        summary = str(exc).splitlines()[0] if str(exc) else type(exc).__name__
        print(f"repro {args.command}: {summary}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
