"""Exception hierarchy for the LBE reproduction package.

Every error raised intentionally by :mod:`repro` derives from
:class:`ReproError`, so applications can catch the package's failures
without masking programming errors (``TypeError`` etc. propagate
unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all intentional errors raised by :mod:`repro`."""


class InvalidSequenceError(ReproError, ValueError):
    """A peptide/protein sequence contains characters outside the
    canonical amino-acid alphabet or is empty where a non-empty
    sequence is required."""


class InvalidSpectrumError(ReproError, ValueError):
    """An experimental spectrum is malformed (negative masses,
    mismatched peak arrays, non-positive charge, ...)."""


class FormatError(ReproError, ValueError):
    """An on-disk file (FASTA / MS2) violates its format."""


class ConfigurationError(ReproError, ValueError):
    """A parameter object is inconsistent (e.g. min length > max
    length, zero ranks, unknown policy name)."""


class PartitionError(ReproError, RuntimeError):
    """A partitioning plan is infeasible or internally inconsistent
    (e.g. assignment is not a disjoint cover of the input)."""


class CommunicatorError(ReproError, RuntimeError):
    """Misuse of the simulated MPI communicator (rank out of range,
    mismatched collective participation, message to self without
    buffering, ...)."""


class WorkerError(ReproError, RuntimeError):
    """A real-OS-process worker of the parallel backend failed: it
    raised (the message carries the remote traceback), died without
    reporting (the message carries the exit code), or the whole pool
    exceeded its deadline."""


class ServiceError(ReproError, RuntimeError):
    """Misuse of the persistent search service or its worker pool
    (submit after close, admission queue full, batch submitted to a
    pool that was never attached, ...)."""


class PipelineError(ServiceError):
    """Misuse of the split dispatch/collect round protocol of the
    resident pool (a second dispatch while a round is still on the
    pipe, collecting a round twice, collecting a stale handle) or of
    the service's pipelined session built on top of it."""


class SearchError(ReproError, RuntimeError):
    """The search engine reached an inconsistent state (e.g. a partial
    index references a peptide the mapping table does not know)."""
