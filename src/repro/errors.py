"""Exception hierarchy for the LBE reproduction package.

Every error raised intentionally by :mod:`repro` derives from
:class:`ReproError`, so applications can catch the package's failures
without masking programming errors (``TypeError`` etc. propagate
unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all intentional errors raised by :mod:`repro`."""


class InvalidSequenceError(ReproError, ValueError):
    """A peptide/protein sequence contains characters outside the
    canonical amino-acid alphabet or is empty where a non-empty
    sequence is required."""


class InvalidSpectrumError(ReproError, ValueError):
    """An experimental spectrum is malformed (negative masses,
    mismatched peak arrays, non-positive charge, ...)."""


class FormatError(ReproError, ValueError):
    """An on-disk file (FASTA / MS2) violates its format."""


class ConfigurationError(ReproError, ValueError):
    """A parameter object is inconsistent (e.g. min length > max
    length, zero ranks, unknown policy name)."""


class PartitionError(ReproError, RuntimeError):
    """A partitioning plan is infeasible or internally inconsistent
    (e.g. assignment is not a disjoint cover of the input)."""


class CommunicatorError(ReproError, RuntimeError):
    """Misuse of the simulated MPI communicator (rank out of range,
    mismatched collective participation, message to self without
    buffering, ...)."""


class WorkerError(ReproError, RuntimeError):
    """A real-OS-process worker of the parallel backend failed: it
    raised (the message carries the remote traceback), died without
    reporting (the message carries the exit code), or exceeded the
    round deadline.

    Structured fields for supervision and one-line CLI diagnosis:

    Attributes
    ----------
    rank:
        Failing rank, or ``None`` when the failure is not per-rank.
    exit_code:
        The dead worker's exit code, or ``None`` when it raised or
        exceeded the deadline.
    retries:
        Retries the supervision layer spent on this rank before
        giving up (0 with retries disabled).
    flight_record:
        Path of the flight-recorder black box dumped when this error
        surfaced through a service, or ``None`` (no recorder, or the
        error never crossed the serving tier).
    """

    def __init__(
        self,
        message: str = "",
        *,
        rank: "int | None" = None,
        exit_code: "int | None" = None,
        retries: int = 0,
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.exit_code = exit_code
        self.retries = retries
        self.flight_record: "str | None" = None

    @property
    def brief(self) -> str:
        """One-line diagnosis (rank, exit code, retry count, flight
        record) — what the CLI prints instead of a raw traceback."""
        parts = []
        if self.rank is not None:
            parts.append(f"rank {self.rank}")
        if self.exit_code is not None:
            parts.append(f"exit code {self.exit_code}")
        if self.retries:
            parts.append(f"after {self.retries} retr"
                         + ("y" if self.retries == 1 else "ies"))
        summary = str(self).splitlines()[0] if str(self) else "worker failure"
        suffix = f" ({', '.join(parts)})" if parts else ""
        if self.flight_record:
            suffix += f" [flight record: {self.flight_record}]"
        return f"{summary}{suffix}"


class ServiceError(ReproError, RuntimeError):
    """Misuse of the persistent search service or its worker pool
    (submit after close, admission queue full, batch submitted to a
    pool that was never attached, ...)."""


class PipelineError(ServiceError):
    """Misuse of the split dispatch/collect round protocol of the
    resident pool (a second dispatch while a round is still on the
    pipe, collecting a round twice, collecting a stale handle) or of
    the service's pipelined session built on top of it."""


class ShardError(ServiceError):
    """A database shard of the sharded serving tier failed a batch (its
    pool's retries exhausted without ``degraded_ok``), or the fleet's
    shard-merge found an inconsistency.  The sharded session itself
    survives — only the affected batch's future carries this error.

    Structured fields for supervision and one-line CLI diagnosis:

    Attributes
    ----------
    shard:
        Failing shard id, or ``None`` when the failure is fleet-wide.
    rank:
        The failing rank *within the shard's pool*, when the underlying
        cause was a single worker.
    retries:
        Retries the shard's supervision layer spent before giving up.
    flight_record:
        Path of the fleet flight-recorder black box dumped when this
        error surfaced, or ``None``.
    """

    def __init__(
        self,
        message: str = "",
        *,
        shard: "int | None" = None,
        rank: "int | None" = None,
        retries: int = 0,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.rank = rank
        self.retries = retries
        self.flight_record: "str | None" = None

    @property
    def brief(self) -> str:
        """One-line diagnosis (shard, rank, retry count, flight record)
        — what the CLI prints instead of a raw traceback."""
        parts = []
        if self.shard is not None:
            parts.append(f"shard {self.shard}")
        if self.rank is not None:
            parts.append(f"rank {self.rank}")
        if self.retries:
            parts.append(f"after {self.retries} retr"
                         + ("y" if self.retries == 1 else "ies"))
        summary = str(self).splitlines()[0] if str(self) else "shard failure"
        suffix = f" ({', '.join(parts)})" if parts else ""
        if self.flight_record:
            suffix += f" [flight record: {self.flight_record}]"
        return f"{summary}{suffix}"


class SearchError(ReproError, RuntimeError):
    """The search engine reached an inconsistent state (e.g. a partial
    index references a peptide the mapping table does not know)."""
