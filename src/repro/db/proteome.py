"""Synthetic proteome generation (UniProt human proteome stand-in).

The paper digests the UniProt human proteome (UP000005640).  Offline we
generate a synthetic proteome whose *digest statistics* match what the
LBE grouping stage cares about:

* amino-acid composition follows human background frequencies
  (K/R abundant enough to give tryptic peptides of realistic length),
* proteins come in **homologous families**: each family has a founder
  sequence and several variants derived by point mutations and small
  indels.  Families are what make real databases contain clusters of
  near-identical peptides (isoforms, paralogs) — precisely the
  similarity structure LBE's grouping exploits and the Chunk policy
  trips over.

Generation is fully deterministic under a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.constants import AA_FREQUENCIES, ALPHABET
from repro.db.fasta import FastaRecord
from repro.errors import ConfigurationError
from repro.util.rng import rng_from

__all__ = ["ProteomeConfig", "SyntheticProteome", "generate_proteome"]


@dataclass(frozen=True, slots=True)
class ProteomeConfig:
    """Parameters of the synthetic proteome.

    Attributes
    ----------
    n_families:
        Number of homologous protein families.
    family_size_mean:
        Mean number of proteins per family (geometric-ish distribution,
        minimum 1).  Human proteomes average a handful of isoforms plus
        paralogs per family.
    protein_length_mean / protein_length_sigma:
        Log-normal protein length parameters (human median ≈ 375 aa).
    mutation_rate:
        Per-residue substitution probability applied to family variants.
    indel_rate:
        Per-variant probability of a small insertion/deletion event.
    seed:
        Master seed; every family derives an independent stream.
    """

    n_families: int = 100
    family_size_mean: float = 3.0
    protein_length_mean: float = 375.0
    protein_length_sigma: float = 0.45
    mutation_rate: float = 0.02
    indel_rate: float = 0.3
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_families <= 0:
            raise ConfigurationError(f"n_families must be > 0, got {self.n_families}")
        if self.family_size_mean < 1.0:
            raise ConfigurationError(
                f"family_size_mean must be >= 1, got {self.family_size_mean}"
            )
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ConfigurationError(
                f"mutation_rate must be in [0,1], got {self.mutation_rate}"
            )
        if not 0.0 <= self.indel_rate <= 1.0:
            raise ConfigurationError(
                f"indel_rate must be in [0,1], got {self.indel_rate}"
            )
        if self.protein_length_mean < 20:
            raise ConfigurationError(
                f"protein_length_mean must be >= 20, got {self.protein_length_mean}"
            )


class SyntheticProteome:
    """A generated proteome: records plus provenance metadata.

    Attributes
    ----------
    records:
        FASTA records, headers of the form ``syn|F<family>V<variant>``.
    family_of:
        ``family_of[i]`` is the family index of ``records[i]``.
    config:
        The generating configuration.
    """

    def __init__(
        self,
        records: List[FastaRecord],
        family_of: List[int],
        config: ProteomeConfig,
    ) -> None:
        if len(records) != len(family_of):
            raise ConfigurationError("records and family_of must align")
        self.records = records
        self.family_of = family_of
        self.config = config

    def __len__(self) -> int:
        return len(self.records)

    def total_residues(self) -> int:
        """Total number of amino acids across all proteins."""
        return sum(len(r.sequence) for r in self.records)


_AA = np.array(list(ALPHABET))
_FREQ = np.array([AA_FREQUENCIES[a] for a in ALPHABET])
_FREQ = _FREQ / _FREQ.sum()


def _random_protein(rng: np.random.Generator, length: int) -> str:
    """Draw a protein of ``length`` residues from background frequencies."""
    return "".join(rng.choice(_AA, size=length, p=_FREQ))


def _mutate(rng: np.random.Generator, sequence: str, config: ProteomeConfig) -> str:
    """Derive a homologous variant by point mutations and small indels."""
    chars = np.array(list(sequence))
    mask = rng.random(chars.size) < config.mutation_rate
    n_mut = int(mask.sum())
    if n_mut:
        chars[mask] = rng.choice(_AA, size=n_mut, p=_FREQ)
    seq = "".join(chars)
    if rng.random() < config.indel_rate and len(seq) > 30:
        # One small indel event: delete or insert a 1..5 residue stretch.
        span = int(rng.integers(1, 6))
        pos = int(rng.integers(0, len(seq) - span))
        if rng.random() < 0.5:
            seq = seq[:pos] + seq[pos + span :]
        else:
            insert = "".join(rng.choice(_AA, size=span, p=_FREQ))
            seq = seq[:pos] + insert + seq[pos:]
    return seq


def generate_proteome(config: ProteomeConfig = ProteomeConfig()) -> SyntheticProteome:
    """Generate a synthetic proteome according to ``config``.

    Families are generated independently (seeded per family), so
    changing ``n_families`` extends a proteome without reshuffling
    existing families — convenient for index-size sweeps.
    """
    records: List[FastaRecord] = []
    family_of: List[int] = []
    for family in range(config.n_families):
        rng = rng_from(config.seed, "proteome", family)
        length = int(
            np.clip(
                rng.lognormal(
                    mean=np.log(config.protein_length_mean),
                    sigma=config.protein_length_sigma,
                ),
                50,
                5000,
            )
        )
        founder = _random_protein(rng, length)
        # Geometric family size with the configured mean (>= 1).
        p = min(1.0, 1.0 / config.family_size_mean)
        size = int(rng.geometric(p))
        records.append(FastaRecord(f"syn|F{family}V0", founder))
        family_of.append(family)
        for variant in range(1, size):
            records.append(
                FastaRecord(f"syn|F{family}V{variant}", _mutate(rng, founder, config))
            )
            family_of.append(family)
    return SyntheticProteome(records, family_of, config)
