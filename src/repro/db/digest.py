"""In-silico tryptic digestion (OpenMS ``Digestor`` equivalent).

Trypsin cleaves C-terminal to lysine (K) and arginine (R) except when
the next residue is proline (P) — the classic "KR|P" rule.  Fully
tryptic digestion with up to ``missed_cleavages`` skipped sites yields
the candidate peptides; length and mass windows filter them (paper
defaults: length 6..40, mass 100..5000 Da, 2 missed cleavages).

Residues outside the canonical alphabet (X, B, Z, U, O, J from real
databases) split the protein: fragments containing them are dropped,
mirroring common search-engine behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.chem.peptide import Peptide
from repro.constants import (
    ALPHABET_SET,
    DIGEST_MAX_LENGTH,
    DIGEST_MAX_MASS,
    DIGEST_MIN_LENGTH,
    DIGEST_MIN_MASS,
    DIGEST_MISSED_CLEAVAGES,
    AA_MONO,
    WATER_MONO,
)
from repro.db.fasta import FastaRecord
from repro.errors import ConfigurationError

__all__ = ["DigestionConfig", "digest_protein", "digest_proteome", "cleavage_sites"]


@dataclass(frozen=True, slots=True)
class DigestionConfig:
    """Digestion parameters (defaults = paper Section V-A.1).

    Attributes
    ----------
    missed_cleavages:
        Maximum number of internal cleavage sites a peptide may span.
    min_length / max_length:
        Inclusive peptide length window.
    min_mass / max_mass:
        Inclusive neutral monoisotopic mass window in Da.
    suppress_proline:
        Apply the KR|P suppression rule (trypsin does not cleave K/R
        followed by proline).
    """

    missed_cleavages: int = DIGEST_MISSED_CLEAVAGES
    min_length: int = DIGEST_MIN_LENGTH
    max_length: int = DIGEST_MAX_LENGTH
    min_mass: float = DIGEST_MIN_MASS
    max_mass: float = DIGEST_MAX_MASS
    suppress_proline: bool = True

    def __post_init__(self) -> None:
        if self.missed_cleavages < 0:
            raise ConfigurationError(
                f"missed_cleavages must be >= 0, got {self.missed_cleavages}"
            )
        if self.min_length < 1 or self.min_length > self.max_length:
            raise ConfigurationError(
                f"invalid length window [{self.min_length}, {self.max_length}]"
            )
        if self.min_mass < 0 or self.min_mass > self.max_mass:
            raise ConfigurationError(
                f"invalid mass window [{self.min_mass}, {self.max_mass}]"
            )


def cleavage_sites(sequence: str, *, suppress_proline: bool = True) -> List[int]:
    """Return the cut positions of trypsin in ``sequence``.

    A cut position ``i`` means the bond *after* residue ``i-1`` is
    cleaved, i.e. fragments are ``sequence[a:b]`` for consecutive cut
    positions ``a < b``.  The returned list always starts with 0 and
    ends with ``len(sequence)``.
    """
    sites = [0]
    last = len(sequence) - 1
    for i, aa in enumerate(sequence):
        if aa in ("K", "R") and i < last:
            if suppress_proline and sequence[i + 1] == "P":
                continue
            sites.append(i + 1)
    sites.append(len(sequence))
    return sites


def _segments_without_ambiguous(sequence: str) -> Iterator[str]:
    """Split ``sequence`` at non-canonical residues, yielding clean runs."""
    start = 0
    for i, aa in enumerate(sequence):
        if aa not in ALPHABET_SET:
            if i > start:
                yield sequence[start:i]
            start = i + 1
    if start < len(sequence):
        yield sequence[start:]


def digest_protein(
    record: FastaRecord,
    config: DigestionConfig = DigestionConfig(),
    *,
    protein_id: int = -1,
) -> List[Peptide]:
    """Digest one protein into fully tryptic peptides.

    Peptides are emitted in order of increasing start position, then
    increasing missed-cleavage count, matching Digestor's output order.
    """
    peptides: List[Peptide] = []
    for segment in _segments_without_ambiguous(record.sequence.upper()):
        sites = cleavage_sites(segment, suppress_proline=config.suppress_proline)
        n = len(sites)
        for si in range(n - 1):
            for mc in range(config.missed_cleavages + 1):
                sj = si + 1 + mc
                if sj >= n:
                    break
                fragment = segment[sites[si] : sites[sj]]
                if not config.min_length <= len(fragment) <= config.max_length:
                    continue
                mass = WATER_MONO + sum(AA_MONO[aa] for aa in fragment)
                if not config.min_mass <= mass <= config.max_mass:
                    continue
                peptides.append(Peptide(fragment, protein_id=protein_id))
    return peptides


def digest_proteome(
    records: Sequence[FastaRecord],
    config: DigestionConfig = DigestionConfig(),
) -> List[Peptide]:
    """Digest every protein of ``records``; peptides carry protein ids."""
    out: List[Peptide] = []
    for pid, record in enumerate(records):
        out.extend(digest_protein(record, config, protein_id=pid))
    return out
