"""Duplicate peptide removal (``DBToolkit`` equivalent).

Digesting homologous proteins produces many identical peptide
sequences.  The paper removes duplicates before clustering (Section
V-A.1).  We keep the *first* occurrence of each sequence (stable
order), which preserves the protein id of the earliest parent — the
same behaviour DBToolkit exhibits with its default settings.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.chem.peptide import Peptide

__all__ = ["deduplicate_peptides"]


def deduplicate_peptides(peptides: Sequence[Peptide]) -> List[Peptide]:
    """Return ``peptides`` with duplicate *sequences* removed, stably.

    Only the bare sequence is compared (modifications are not expected
    at this pipeline stage; modified variants are enumerated after
    deduplication, as in the paper's pipeline).
    """
    seen: Set[str] = set()
    unique: List[Peptide] = []
    for pep in peptides:
        if pep.sequence not in seen:
            seen.add(pep.sequence)
            unique.append(pep)
    return unique
