"""FASTA input/output.

Two flavours are supported:

* plain protein/peptide FASTA (``read_fasta`` / ``write_fasta``),
* the *grouped* FASTA produced by LBE's Algorithm 1, where the peptide
  sequences of each similarity group appear consecutively and each
  header records its group id (``write_grouped_fasta`` /
  ``read_grouped_fasta``).  The paper's Python preprocessing script
  emits exactly this "clustered database" (Section III-C.2).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, TextIO, Tuple, Union

from repro.errors import FormatError

__all__ = [
    "FastaRecord",
    "read_fasta",
    "write_fasta",
    "read_grouped_fasta",
    "write_grouped_fasta",
]

PathOrHandle = Union[str, Path, TextIO]

#: Maximum characters per sequence line written by the writers.
_LINE_WIDTH = 60


@dataclass(frozen=True, slots=True)
class FastaRecord:
    """One FASTA entry: a header (without ``>``) and a sequence."""

    header: str
    sequence: str


def _open_for_read(source: PathOrHandle) -> tuple[TextIO, bool]:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="ascii"), True
    return source, False


def _open_for_write(target: PathOrHandle) -> tuple[TextIO, bool]:
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="ascii"), True
    return target, False


def read_fasta(source: PathOrHandle) -> Iterator[FastaRecord]:
    """Yield :class:`FastaRecord` entries from a FASTA file or handle.

    Sequence lines are concatenated and upper-cased; blank lines are
    ignored.  Raises :class:`~repro.errors.FormatError` on sequence
    data before the first header or an entry with an empty sequence.
    """
    handle, owned = _open_for_read(source)
    try:
        header: str | None = None
        chunks: List[str] = []
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if header is not None:
                    seq = "".join(chunks)
                    if not seq:
                        raise FormatError(f"record {header!r} has an empty sequence")
                    yield FastaRecord(header, seq)
                header = line[1:].strip()
                chunks = []
            else:
                if header is None:
                    raise FormatError(
                        f"line {lineno}: sequence data before the first '>' header"
                    )
                chunks.append(line.upper())
        if header is not None:
            seq = "".join(chunks)
            if not seq:
                raise FormatError(f"record {header!r} has an empty sequence")
            yield FastaRecord(header, seq)
    finally:
        if owned:
            handle.close()


def write_fasta(target: PathOrHandle, records: Iterable[FastaRecord]) -> int:
    """Write ``records`` to ``target`` in FASTA format.

    Returns the number of records written.
    """
    handle, owned = _open_for_write(target)
    count = 0
    try:
        for record in records:
            handle.write(f">{record.header}\n")
            seq = record.sequence
            for start in range(0, len(seq), _LINE_WIDTH):
                handle.write(seq[start : start + _LINE_WIDTH] + "\n")
            count += 1
    finally:
        if owned:
            handle.close()
    return count


def write_grouped_fasta(
    target: PathOrHandle,
    sequences: Sequence[str],
    group_sizes: Sequence[int],
) -> int:
    """Write a clustered peptide database in LBE's grouped-FASTA form.

    ``sequences`` must be in grouped order (the output order of
    Algorithm 1) and ``group_sizes`` the run lengths of the groups.
    Each header is ``grp<G>|pep<I>`` with the global group index G and
    peptide index I, so the grouping is recoverable on read.

    Returns the number of records written.
    """
    if sum(group_sizes) != len(sequences):
        raise FormatError(
            f"group sizes sum to {sum(group_sizes)} but there are "
            f"{len(sequences)} sequences"
        )
    if any(size <= 0 for size in group_sizes):
        raise FormatError("every group must contain at least one sequence")

    def records() -> Iterator[FastaRecord]:
        index = 0
        for group_id, size in enumerate(group_sizes):
            for _ in range(size):
                yield FastaRecord(f"grp{group_id}|pep{index}", sequences[index])
                index += 1

    return write_fasta(target, records())


def read_grouped_fasta(source: PathOrHandle) -> Tuple[List[str], List[int]]:
    """Read a grouped FASTA back into ``(sequences, group_sizes)``.

    Validates that group ids start at 0, are contiguous and
    non-decreasing (groups must be consecutive runs).
    """
    sequences: List[str] = []
    group_sizes: List[int] = []
    last_group = -1
    for record in read_fasta(source):
        head = record.header.split("|", 1)[0]
        if not head.startswith("grp"):
            raise FormatError(f"header {record.header!r} lacks a 'grp<N>|' prefix")
        try:
            group_id = int(head[3:])
        except ValueError:
            raise FormatError(f"header {record.header!r} has a non-integer group id")
        if group_id == last_group:
            group_sizes[-1] += 1
        elif group_id == last_group + 1:
            group_sizes.append(1)
            last_group = group_id
        else:
            raise FormatError(
                f"group ids must be contiguous runs; saw grp{group_id} after grp{last_group}"
            )
        sequences.append(record.sequence)
    return sequences, group_sizes


def fasta_to_string(records: Iterable[FastaRecord]) -> str:
    """Render ``records`` to an in-memory FASTA string (testing helper)."""
    buf = io.StringIO()
    write_fasta(buf, records)
    return buf.getvalue()
