"""Protein/peptide database substrate.

This subpackage stands in for the external tools of the paper's
pipeline (Section V-A.1):

* UniProt human proteome download → :mod:`~repro.db.proteome`
  (synthetic proteome generator with homologous families),
* OpenMS ``Digestor`` → :mod:`~repro.db.digest` (tryptic in-silico
  digestion),
* ``DBToolkit`` duplicate removal → :mod:`~repro.db.dedup`,
* FASTA files (plain and the grouped/clustered output of LBE's
  Algorithm 1) → :mod:`~repro.db.fasta`.
"""

from repro.db.fasta import (
    FastaRecord,
    read_fasta,
    write_fasta,
    read_grouped_fasta,
    write_grouped_fasta,
)
from repro.db.proteome import ProteomeConfig, SyntheticProteome, generate_proteome
from repro.db.digest import DigestionConfig, digest_protein, digest_proteome
from repro.db.dedup import deduplicate_peptides

__all__ = [
    "FastaRecord",
    "read_fasta",
    "write_fasta",
    "read_grouped_fasta",
    "write_grouped_fasta",
    "ProteomeConfig",
    "SyntheticProteome",
    "generate_proteome",
    "DigestionConfig",
    "digest_protein",
    "digest_proteome",
    "deduplicate_peptides",
]
