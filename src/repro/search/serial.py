"""Shared-memory reference engine (the original SLM-Transform role).

One index over the whole database, one pseudo-rank.  Serves three
purposes:

* ground truth the distributed engine must reproduce exactly (tests),
* the shared-memory baseline of the memory comparison (Fig. 5),
* the single-CPU reference point of speedup computations.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.index.arena import thread_workspace
from repro.index.slm import SLMIndex, SLMIndexSettings
from repro.search.costs import QueryCostModel, SerialCostModel
from repro.search.database import IndexedDatabase
from repro.search.psm import PSM, RankStats, SearchResults, SpectrumResult
from repro.search.scoring import score_many
from repro.spectra.model import Spectrum
from repro.spectra.preprocess import PreprocessConfig, preprocess_batch
from repro.errors import ConfigurationError

__all__ = ["SerialSearchEngine"]


def top_k_psms(
    scan_id: int,
    entry_ids: np.ndarray,
    scores: np.ndarray,
    shared: np.ndarray,
    k: int,
) -> List[PSM]:
    """Top-``k`` PSMs by (score desc, entry id asc) — deterministic."""
    if entry_ids.size == 0:
        return []
    order = np.lexsort((entry_ids, -scores))[:k]
    return [
        PSM(
            scan_id=scan_id,
            entry_id=int(entry_ids[i]),
            score=float(scores[i]),
            shared_peaks=int(shared[i]),
        )
        for i in order
    ]


class SerialSearchEngine:
    """Single-node search over the full database.

    Parameters
    ----------
    database:
        The indexed database.
    settings:
        SLM index/query settings.
    query_costs / serial_costs:
        Virtual cost models (defaults match the distributed engine, so
        serial vs distributed virtual times are comparable).
    top_k:
        PSMs retained per spectrum.
    """

    def __init__(
        self,
        database: IndexedDatabase,
        settings: SLMIndexSettings = SLMIndexSettings(),
        *,
        query_costs: QueryCostModel = QueryCostModel(),
        serial_costs: SerialCostModel = SerialCostModel(),
        top_k: int = 5,
    ) -> None:
        if top_k < 1:
            raise ConfigurationError(f"top_k must be >= 1, got {top_k}")
        self.database = database
        self.settings = settings
        self.query_costs = query_costs
        self.serial_costs = serial_costs
        self.top_k = top_k
        self._index: SLMIndex | None = None

    @property
    def index(self) -> SLMIndex:
        """The full index, built lazily and cached."""
        if self._index is None:
            self._index = SLMIndex(
                self.database.entries,
                self.settings,
                arena=self.database.arena_for(self.settings.fragmentation),
            )
        return self._index

    def run(
        self,
        spectra: Sequence[Spectrum],
        preprocess: PreprocessConfig = PreprocessConfig(),
    ) -> SearchResults:
        """Search every spectrum; return results with virtual timing."""
        db = self.database
        prep_time = self.serial_costs.prep_cost(db.n_entries, db.n_bases)
        # Hoisted out of the per-spectrum loop: one arena lookup for
        # the whole run instead of a settings-hash + dict probe per
        # spectrum.
        arena = db.arena_for(self.settings.fragmentation)

        index = self.index
        stats = RankStats(rank=0, n_entries=len(index), n_ions=index.n_ions)
        build_time = self.query_costs.build_cost(len(index), index.n_ions)
        stats.build_time = build_time

        processed = preprocess_batch(spectra, preprocess)
        # One scratch workspace threads through the batched filtration
        # and scoring kernels (same warm buffers for the whole run).
        ws = thread_workspace()
        filtered = index.filter_many(processed, workspace=ws)
        outcomes = score_many(
            processed,
            [f.candidates for f in filtered],
            fragment_tolerance=self.settings.fragment_tolerance,
            fragmentation=self.settings.fragmentation,
            arena=arena,
            workspace=ws,
        )

        results: List[SpectrumResult] = []
        query_time = 0.0
        for spectrum, fres, outcome in zip(spectra, filtered, outcomes):
            query_time += self.query_costs.per_spectrum_preprocess
            query_time += self.query_costs.filter_cost(fres)
            stats.buckets_scanned += fres.buckets_scanned
            stats.ions_scanned += fres.ions_scanned
            query_time += self.query_costs.scoring_cost(outcome)
            stats.candidates_scored += outcome.candidates_scored
            stats.residues_scored += outcome.residues_scored
            results.append(
                SpectrumResult(
                    scan_id=spectrum.scan_id,
                    n_candidates=int(fres.candidates.size),
                    psms=top_k_psms(
                        spectrum.scan_id,
                        fres.candidates.astype(np.int64),
                        outcome.scores,
                        fres.shared_peaks,
                        self.top_k,
                    ),
                )
            )
        stats.query_time = query_time

        total_psms = sum(len(r.psms) for r in results)
        merge_time = self.serial_costs.merge_cost(total_psms)
        phase_times = {
            "serial_prep": prep_time,
            "build": build_time,
            "query": query_time,
            "merge": merge_time,
            "total": prep_time + build_time + query_time + merge_time,
        }
        return SearchResults(
            spectra=results,
            rank_stats=[stats],
            phase_times=phase_times,
            policy_name="shared",
            n_ranks=1,
        )
