"""Performance metrics: the paper's Equations and derived quantities.

* :func:`load_imbalance` — Eq. 1: ``LI = ΔTmax / Tavg`` where
  ``ΔTmax`` is the maximum positive deviation from the mean per-rank
  compute time.
* :func:`wasted_cpu_time` — Section VI: ``Twst = x · N · Tavg =
  N · ΔTmax``.
* :func:`policy_cpu_speedup` — Fig. 11's quantity: the ratio of wasted
  CPU time under the conventional Chunk partitioning to a policy's
  (equivalently, the LI ratio scaled by the Tavg ratio).
* :func:`speedup_series` — Fig. 8/10's quantity: speedup over a rank
  sweep, anchored at the smallest measured rank count which is assumed
  ideally efficient (the paper's base-case convention, Section V-D).
* :func:`amdahl_speedup` / :func:`estimate_serial_fraction` — the
  saturation model behind Fig. 10.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "load_imbalance",
    "wasted_cpu_time",
    "policy_cpu_speedup",
    "speedup_series",
    "amdahl_speedup",
    "estimate_serial_fraction",
]


def _validate_times(times: Sequence[float]) -> np.ndarray:
    arr = np.asarray(times, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("need at least one rank time")
    if np.any(arr < 0):
        raise ConfigurationError("rank times must be >= 0")
    return arr


def load_imbalance(times: Sequence[float]) -> float:
    """Eq. 1: ``LI = ΔTmax / Tavg`` (0.0 for a perfectly balanced run).

    ``times`` are per-rank compute times of one experiment.  Returns a
    fraction (multiply by 100 for the paper's percentage axis).
    """
    arr = _validate_times(times)
    avg = float(arr.mean())
    if avg == 0.0:
        return 0.0
    return float((arr.max() - avg) / avg)


def wasted_cpu_time(times: Sequence[float]) -> float:
    """Section VI: ``Twst = N · ΔTmax`` seconds of system CPU time.

    The total CPU time ranks spend idling while the slowest rank
    finishes (every other rank waits ``Tmax - t_i``, bounded by the
    paper's ``N · ΔTmax`` approximation which we follow exactly).
    """
    arr = _validate_times(times)
    return float(arr.size * (arr.max() - arr.mean()))


def policy_cpu_speedup(
    policy_times: Sequence[float], chunk_times: Sequence[float]
) -> float:
    """Fig. 11: CPU-time speedup of a policy over Chunk partitioning.

    Computed as the ratio of stalled system CPU time
    ``Twst(chunk) / Twst(policy)``.  A perfectly balanced policy run
    (zero waste) returns ``inf``; Chunk against itself returns 1.0.
    """
    chunk_waste = wasted_cpu_time(chunk_times)
    policy_waste = wasted_cpu_time(policy_times)
    if policy_waste == 0.0:
        return float("inf") if chunk_waste > 0 else 1.0
    return chunk_waste / policy_waste


def speedup_series(times_by_ranks: Mapping[int, float]) -> Dict[int, float]:
    """Speedup over a rank sweep, anchored at the smallest rank count.

    The paper cannot run 1 process (partition size limits), so the
    smallest measured configuration ``p_min`` is taken as ideally
    efficient: ``speedup(p) = p_min · T(p_min) / T(p)`` (Section V-D's
    base-case convention).
    """
    if not times_by_ranks:
        raise ConfigurationError("empty rank sweep")
    for p, t in times_by_ranks.items():
        if p < 1:
            raise ConfigurationError(f"rank count must be >= 1, got {p}")
        if t < 0:
            raise ConfigurationError(f"time must be >= 0, got {t}")
    p_min = min(times_by_ranks)
    t_min = times_by_ranks[p_min]
    out: Dict[int, float] = {}
    for p, t in sorted(times_by_ranks.items()):
        out[p] = float("inf") if t == 0 else p_min * t_min / t
    return out


def amdahl_speedup(n_ranks: int, serial_fraction: float) -> float:
    """Amdahl's law: ``1 / (s + (1 - s) / p)``."""
    if n_ranks < 1:
        raise ConfigurationError(f"n_ranks must be >= 1, got {n_ranks}")
    if not 0.0 <= serial_fraction <= 1.0:
        raise ConfigurationError(
            f"serial_fraction must be in [0,1], got {serial_fraction}"
        )
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / n_ranks)


def estimate_serial_fraction(times_by_ranks: Mapping[int, float]) -> float:
    """Least-squares fit of ``T(p) = a + b / p``; returns ``a / (a+b)``.

    ``a`` is the serial time, ``b`` the perfectly parallel time at one
    rank; the serial fraction drives :func:`amdahl_speedup`.  Requires
    at least two distinct rank counts.  The fit clips to [0, 1].
    """
    if len(times_by_ranks) < 2:
        raise ConfigurationError("need at least two rank counts to fit")
    ps = np.array(sorted(times_by_ranks), dtype=np.float64)
    ts = np.array([times_by_ranks[int(p)] for p in ps], dtype=np.float64)
    design = np.column_stack([np.ones_like(ps), 1.0 / ps])
    (a, b), *_ = np.linalg.lstsq(design, ts, rcond=None)
    total = a + b
    if total <= 0:
        return 0.0
    return float(np.clip(a / total, 0.0, 1.0))
