"""The indexed database: base peptides plus modified-variant entries.

The paper's pipeline (Section V-A.1) is: proteome → in-silico digestion
→ duplicate removal → variable-modification expansion → index.  The
*entries* (base peptides and their modified variants) are what the SLM
index stores and what LBE distributes; entry counts are the paper's
"index size (million peptides & spectra)" axis.

Entries are laid out base-major: the entries of base peptide ``b``
occupy the contiguous global-id range ``entry_offsets[b] ..
entry_offsets[b+1]``, with the unmodified peptide first.  Grouping runs
on base sequences (Section III-C: variants belong to their base's
group) and is expanded to entry space with
:meth:`IndexedDatabase.expand_grouping`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.chem.fragments import FragmentationSettings
from repro.chem.modifications import ModificationSet, VariantEnumerator, paper_modifications
from repro.chem.peptide import Peptide
from repro.core.grouping import Grouping, GroupingConfig, group_peptides
from repro.db.dedup import deduplicate_peptides
from repro.db.digest import DigestionConfig, digest_proteome
from repro.db.fasta import FastaRecord
from repro.db.proteome import ProteomeConfig, generate_proteome
from repro.errors import ConfigurationError, PartitionError
from repro.index.arena import FragmentArena, concat_ranges

__all__ = ["DatabaseConfig", "IndexedDatabase"]


@dataclass(frozen=True, slots=True)
class DatabaseConfig:
    """End-to-end database construction parameters.

    Attributes
    ----------
    proteome:
        Synthetic proteome parameters (ignored when explicit records
        are supplied to :meth:`IndexedDatabase.build`).
    digestion:
        Tryptic digestion parameters.
    modifications:
        Variable-modification set (default: the paper's three mods).
    max_variants_per_peptide:
        Truncation knob for variant enumeration — the workload
        builder's index-size control.
    """

    proteome: ProteomeConfig = ProteomeConfig()
    digestion: DigestionConfig = DigestionConfig()
    modifications: ModificationSet = field(default_factory=paper_modifications)
    max_variants_per_peptide: int | None = 16


class IndexedDatabase:
    """Base peptides plus expanded entries, with id arithmetic.

    Attributes
    ----------
    base_peptides:
        Deduplicated unmodified peptides; base id = position.
    entries:
        All index entries (every base peptide followed by its modified
        variants), base-major order; entry id = position.
    entry_offsets:
        ``entry_offsets[b] .. entry_offsets[b+1]`` is base ``b``'s
        entry range; length ``n_bases + 1``.
    """

    def __init__(self, base_peptides: List[Peptide], entries: List[Peptide],
                 entry_offsets: np.ndarray) -> None:
        if entry_offsets.ndim != 1 or entry_offsets.size != len(base_peptides) + 1:
            raise ConfigurationError("entry_offsets must have n_bases + 1 elements")
        if int(entry_offsets[-1]) != len(entries):
            raise ConfigurationError("entry_offsets inconsistent with entries")
        self.base_peptides = base_peptides
        self.entries = entries
        self.entry_offsets = entry_offsets
        self._arena_cache: dict[FragmentationSettings, FragmentArena] = {}
        self._grouping_cache: dict[GroupingConfig, Grouping] = {}
        self._entries_arr: np.ndarray | None = None

    # -- construction ----------------------------------------------------

    @classmethod
    def from_peptides(
        cls,
        base_peptides: Sequence[Peptide],
        modifications: ModificationSet | None = None,
        *,
        max_variants_per_peptide: int | None = 16,
    ) -> "IndexedDatabase":
        """Expand ``base_peptides`` into an entry database."""
        mods = modifications if modifications is not None else paper_modifications()
        enum = VariantEnumerator(mods, max_variants_per_peptide=max_variants_per_peptide)
        entries: List[Peptide] = []
        offsets = np.zeros(len(base_peptides) + 1, dtype=np.int64)
        for b, pep in enumerate(base_peptides):
            entries.extend(enum.variants(pep))
            offsets[b + 1] = len(entries)
        return cls(list(base_peptides), entries, offsets)

    @classmethod
    def from_index_entries(
        cls, entries: Sequence[Peptide]
    ) -> "IndexedDatabase":
        """Rebuild a database from a serialized index's peptide table.

        A :func:`~repro.index.serialize.save_index` archive stores the
        index's *entries* — every base peptide followed by its modified
        variants, base-major, unmodified first (the layout
        :meth:`from_peptides` produces).  This inverts that layout:
        entry offsets are recovered from the unmodified-entry
        boundaries, so a service started from an archive plans, groups,
        and partitions identically to one built from the source FASTA
        (grouping runs on the same base sequences, the manifests cover
        the same entry-id space).  No digestion, deduplication, or
        variant enumeration happens — that is the whole point of the
        ``repro serve --index`` start path.
        """
        entries = list(entries)
        if not entries:
            raise ConfigurationError("cannot rebuild a database from 0 entries")
        base_positions = [i for i, p in enumerate(entries) if not p.mods]
        if not base_positions or base_positions[0] != 0:
            raise ConfigurationError(
                "entry table does not start with an unmodified base "
                "peptide; this is not a base-major index archive"
            )
        offsets = np.asarray(base_positions + [len(entries)], dtype=np.int64)
        return cls([entries[i] for i in base_positions], entries, offsets)

    @classmethod
    def build(
        cls,
        config: DatabaseConfig = DatabaseConfig(),
        *,
        records: Sequence[FastaRecord] | None = None,
    ) -> "IndexedDatabase":
        """Full pipeline: proteome → digest → dedup → expand.

        ``records`` overrides the synthetic proteome (e.g. proteins
        read from a FASTA file).
        """
        if records is None:
            records = generate_proteome(config.proteome).records
        digested = digest_proteome(records, config.digestion)
        unique = deduplicate_peptides(digested)
        return cls.from_peptides(
            unique,
            config.modifications,
            max_variants_per_peptide=config.max_variants_per_peptide,
        )

    # -- id arithmetic ----------------------------------------------------

    @property
    def n_bases(self) -> int:
        """Number of base peptides."""
        return len(self.base_peptides)

    @property
    def n_entries(self) -> int:
        """Number of entries (the paper's "index size")."""
        return len(self.entries)

    def entry_counts(self) -> np.ndarray:
        """Entries per base peptide, length ``n_bases``."""
        return np.diff(self.entry_offsets)

    def base_of_entry(self, entry_id: int) -> int:
        """Base id owning ``entry_id`` (binary search)."""
        if not 0 <= entry_id < self.n_entries:
            raise ConfigurationError(
                f"entry id {entry_id} outside [0, {self.n_entries})"
            )
        return int(np.searchsorted(self.entry_offsets, entry_id, side="right") - 1)

    def base_sequences(self) -> List[str]:
        """Base peptide sequences (Algorithm 1's input)."""
        return [p.sequence for p in self.base_peptides]

    def entries_at(self, entry_ids: np.ndarray) -> List[Peptide]:
        """Entries at ``entry_ids``, gathered in C (no per-id Python loop).

        The object-array gather is what lets each rank assemble its
        peptide partition without iterating the manifest in Python.
        """
        if self._entries_arr is None:
            arr = np.empty(len(self.entries), dtype=object)
            arr[:] = self.entries
            self._entries_arr = arr
        return list(self._entries_arr[np.asarray(entry_ids, dtype=np.int64)])

    # -- fragment arena ----------------------------------------------------

    def arena_for(
        self, fragmentation: FragmentationSettings = FragmentationSettings()
    ) -> FragmentArena:
        """The flat fragment arena of every entry, built once and cached.

        Fragment generation dominates repeated index builds (every
        policy × rank-count combination rebuilds partial indexes over
        the same entries), so the arena is keyed by the — hashable —
        fragmentation settings and shared across engines.  The arena
        also carries per-entry residue counts and float32 masses, so
        consumers never loop over :class:`Peptide` objects on the hot
        path.
        """
        cached = self._arena_cache.get(fragmentation)
        if cached is None:
            cached = FragmentArena.from_peptides(self.entries, fragmentation)
            self._arena_cache[fragmentation] = cached
        return cached

    def fragments_for(
        self, fragmentation: FragmentationSettings = FragmentationSettings()
    ) -> List[np.ndarray]:
        """Fragment m/z arrays of every entry (zero-copy arena views).

        Legacy list-of-arrays shape over :meth:`arena_for`'s storage;
        the list object is cached inside the arena, so repeated calls
        return the identical object.
        """
        return self.arena_for(fragmentation).views()

    # -- grouping expansion ------------------------------------------------

    def group_bases(self, config: GroupingConfig = GroupingConfig()) -> Grouping:
        """Run Algorithm 1 over the base sequences.

        Cached per configuration: grouping is policy- and
        rank-count-independent, so every engine built over this
        database shares one grouping run (the real cost is still
        charged virtually to the master each time).
        """
        cached = self._grouping_cache.get(config)
        if cached is None:
            cached = group_peptides(self.base_sequences(), config)
            self._grouping_cache[config] = cached
        return cached

    def expand_grouping(self, base_grouping: Grouping) -> Grouping:
        """Lift a base-space grouping to entry space.

        Each base peptide's entries stay contiguous (variants travel
        with their base, Section III-C); entry-space group sizes are
        the per-group sums of entry counts.
        """
        if base_grouping.n_sequences != self.n_bases:
            raise PartitionError(
                f"grouping covers {base_grouping.n_sequences} bases, "
                f"database has {self.n_bases}"
            )
        counts = self.entry_counts()
        offsets = self.entry_offsets
        order = np.asarray(base_grouping.order, dtype=np.int64)
        expanded_order = concat_ranges(offsets[order], offsets[order + 1])
        counts_in_grouped = counts[order]
        bounds = np.asarray(base_grouping.group_bounds(), dtype=np.int64)
        counts_cum = np.zeros(order.size + 1, dtype=np.int64)
        np.cumsum(counts_in_grouped, out=counts_cum[1:])
        group_sizes = counts_cum[bounds[1:]] - counts_cum[bounds[:-1]]
        return Grouping(order=expanded_order, group_sizes=group_sizes)
