"""Calibrated virtual-cost models for search work.

The simulated cluster charges deterministic virtual time for every unit
of work the engine actually performs.  Two ledgers exist:

* :class:`QueryCostModel` — the *parallel* per-rank work: partial index
  construction, query preprocessing, filtration (bucket/ion scans) and
  candidate scoring.
* :class:`SerialCostModel` — the master-only serial work: database
  read/digest accounting, Algorithm 1 grouping, mapping-table
  construction, and result merging.  This is the Amdahl term that
  saturates total-execution speedup (paper Fig. 10).

Calibration: per-op constants are set so that one rank processing the
paper's per-partition load (~3 M entries, 23 k queries) lands in the
paper's reported minutes-scale query times; at the reproduction's
~300× smaller index sizes absolute times shrink proportionally, while
every reported *ratio* (imbalance, speedup) is scale-free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.index.slm import FilterResult
from repro.search.scoring import ScoringOutcome

__all__ = ["QueryCostModel", "SerialCostModel"]


@dataclass(frozen=True, slots=True)
class QueryCostModel:
    """Virtual costs of the per-rank (parallel) work, in seconds.

    Attributes
    ----------
    per_spectrum_preprocess:
        Peak-picking cost per query spectrum (replicated on every
        rank, like the paper's per-machine preprocessing).
    per_bucket:
        Cost per index bucket inspected during filtration.
    per_ion:
        Cost per ion entry gathered during filtration.
    per_candidate:
        Fixed cost per scored candidate.
    per_residue:
        Additional scoring cost per candidate residue.
    per_index_ion:
        Partial-index construction cost per ion entry.
    per_index_entry:
        Partial-index construction cost per peptide entry.
    """

    per_spectrum_preprocess: float = 2.0e-6
    per_bucket: float = 2.0e-8
    per_ion: float = 2.0e-9
    per_candidate: float = 1.0e-6
    per_residue: float = 2.0e-7
    per_index_ion: float = 1.5e-8
    per_index_entry: float = 2.0e-7

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:  # noqa: PLW2901
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")

    def preprocess_cost(self, n_spectra: int) -> float:
        """Cost of preprocessing ``n_spectra`` queries."""
        return n_spectra * self.per_spectrum_preprocess

    def filter_cost(self, result: FilterResult) -> float:
        """Cost of one filtration, from its work counters."""
        return self.filter_cost_counts(
            result.buckets_scanned, result.ions_scanned
        )

    def filter_cost_counts(self, buckets_scanned: int, ions_scanned: int) -> float:
        """:meth:`filter_cost` from raw counters (no result object).

        The backend-agnostic rank body reports work as plain counter
        arrays (they must cross process boundaries); the simulated
        engine charges virtual time from those counters directly.
        """
        return (
            buckets_scanned * self.per_bucket + ions_scanned * self.per_ion
        )

    def scoring_cost(self, outcome: ScoringOutcome) -> float:
        """Cost of one scoring pass, from its work counters."""
        return self.scoring_cost_counts(
            outcome.candidates_scored, outcome.residues_scored
        )

    def scoring_cost_counts(
        self, candidates_scored: int, residues_scored: int
    ) -> float:
        """:meth:`scoring_cost` from raw counters (no outcome object)."""
        return (
            candidates_scored * self.per_candidate
            + residues_scored * self.per_residue
        )

    def build_cost(self, n_entries: int, n_ions: int) -> float:
        """Cost of building a partial index."""
        return n_entries * self.per_index_entry + n_ions * self.per_index_ion


@dataclass(frozen=True, slots=True)
class SerialCostModel:
    """Virtual costs of the master-only serial work, in seconds.

    Attributes
    ----------
    per_entry_read:
        Database read/expansion accounting per index entry.
    per_base_group:
        Algorithm 1 cost per base peptide.  **Default 0**: the paper
        runs the grouping as a separate offline preprocessing script
        (Section IV), so its cost is not part of measured execution
        time; set it positive to study in-pipeline grouping (see the
        grouping ablation benchmark).
    per_entry_map:
        Mapping-table construction cost per entry.
    per_psm_merge:
        Master-side merge cost per gathered PSM.
    fixed_startup:
        Fixed program startup/IO cost (query-file open, MPI init).
        This constant is what makes execution-time scalability improve
        with index size (paper Fig. 10): it dilutes as query work
        grows.
    """

    per_entry_read: float = 1.0e-7
    per_base_group: float = 0.0
    per_entry_map: float = 2.0e-8
    per_psm_merge: float = 4.0e-7
    fixed_startup: float = 0.012

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:  # noqa: PLW2901
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")

    def prep_cost(self, n_entries: int, n_bases: int) -> float:
        """Read + group + map cost before the parallel phases."""
        return (
            self.fixed_startup
            + n_entries * self.per_entry_read
            + n_bases * self.per_base_group
            + n_entries * self.per_entry_map
        )

    def merge_cost(self, n_psms: int) -> float:
        """Master-side result merge cost."""
        return n_psms * self.per_psm_merge
