"""Target-decoy false-discovery-rate estimation.

The paper reports candidate counts but, like every production search
engine, its host pipeline validates identifications with the standard
target-decoy approach (Elias & Gygi, 2007): search a database that
interleaves real ("target") peptides with reversed ("decoy") peptides;
any decoy hit is by construction a false match, so the decoy-hit rate
above a score threshold estimates the false-discovery rate among the
target hits.

This module provides:

* :func:`make_decoy_peptides` — reversed-sequence decoys (the classic
  ``DBToolkit``-style reversal that preserves length, composition and
  the C-terminal residue so tryptic statistics match),
* :func:`combined_target_decoy` — an :class:`IndexedDatabase` over the
  interleaved target+decoy peptides plus the decoy indicator,
* :func:`estimate_fdr` / :func:`qvalues` — FDR at a threshold and
  monotone q-values over a score-sorted PSM list.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.chem.modifications import ModificationSet
from repro.chem.peptide import Peptide
from repro.errors import ConfigurationError
from repro.search.database import IndexedDatabase

__all__ = [
    "make_decoy_peptides",
    "combined_target_decoy",
    "estimate_fdr",
    "qvalues",
]


def make_decoy_peptides(targets: Sequence[Peptide]) -> List[Peptide]:
    """Reversed-sequence decoys, one per target.

    The C-terminal residue stays in place (tryptic peptides end in
    K/R; preserving that keeps decoy fragment statistics comparable),
    the prefix is reversed — the conventional "pseudo-reverse" decoy.
    Decoys keep their target's ``protein_id`` negated minus one so the
    provenance is recoverable and never collides with target ids.
    """
    decoys: List[Peptide] = []
    for pep in targets:
        seq = pep.sequence
        if len(seq) > 1:
            decoy_seq = seq[-2::-1] + seq[-1]
        else:
            decoy_seq = seq
        decoys.append(Peptide(decoy_seq, protein_id=-pep.protein_id - 1))
    return decoys


def combined_target_decoy(
    targets: Sequence[Peptide],
    modifications: ModificationSet | None = None,
    *,
    max_variants_per_peptide: int | None = 16,
) -> Tuple[IndexedDatabase, np.ndarray]:
    """Interleaved target+decoy database and its decoy indicator.

    Returns ``(database, is_decoy)`` where ``is_decoy[entry_id]`` is
    True for decoy entries.  Targets and their decoys alternate
    (t0, d0, t1, d1, ...) so any Chunk-style split stays balanced in
    decoy fraction.  Duplicate decoy sequences that collide with a
    target (palindromic peptides) are kept — the standard approach —
    and simply dilute sensitivity slightly.
    """
    if not targets:
        raise ConfigurationError("need at least one target peptide")
    decoys = make_decoy_peptides(targets)
    interleaved: List[Peptide] = []
    decoy_flags: List[bool] = []
    for t, d in zip(targets, decoys):
        interleaved.append(t)
        decoy_flags.append(False)
        interleaved.append(d)
        decoy_flags.append(True)
    db = IndexedDatabase.from_peptides(
        interleaved,
        modifications,
        max_variants_per_peptide=max_variants_per_peptide,
    )
    is_decoy = np.zeros(db.n_entries, dtype=bool)
    offsets = db.entry_offsets
    for base_id, flag in enumerate(decoy_flags):
        if flag:
            is_decoy[offsets[base_id] : offsets[base_id + 1]] = True
    return db, is_decoy


def estimate_fdr(scores: np.ndarray, is_decoy: np.ndarray, threshold: float) -> float:
    """FDR among target PSMs scoring ``>= threshold``.

    Standard estimator: ``#decoys / max(#targets, 1)`` above the
    threshold (decoy hits estimate the false positives hiding among
    the targets).
    """
    scores = np.asarray(scores, dtype=np.float64)
    is_decoy = np.asarray(is_decoy, dtype=bool)
    if scores.shape != is_decoy.shape:
        raise ConfigurationError("scores and is_decoy must align")
    above = scores >= threshold
    n_decoy = int(np.count_nonzero(above & is_decoy))
    n_target = int(np.count_nonzero(above & ~is_decoy))
    return n_decoy / max(n_target, 1)


def qvalues(scores: np.ndarray, is_decoy: np.ndarray) -> np.ndarray:
    """q-value per PSM: the minimum FDR at which it is accepted.

    PSMs are ranked by descending score; the running decoy/target
    ratio gives FDR at each rank, and a reverse cumulative minimum
    enforces monotonicity.  Returns q-values aligned with the input
    order.
    """
    scores = np.asarray(scores, dtype=np.float64)
    is_decoy = np.asarray(is_decoy, dtype=bool)
    if scores.shape != is_decoy.shape:
        raise ConfigurationError("scores and is_decoy must align")
    n = scores.size
    if n == 0:
        return np.empty(0, dtype=np.float64)
    order = np.argsort(-scores, kind="stable")
    decoy_sorted = is_decoy[order]
    cum_decoy = np.cumsum(decoy_sorted)
    cum_target = np.cumsum(~decoy_sorted)
    fdr = cum_decoy / np.maximum(cum_target, 1)
    q_sorted = np.minimum.accumulate(fdr[::-1])[::-1]
    out = np.empty(n, dtype=np.float64)
    out[order] = q_sorted
    return out
