"""PSM report files (tab-separated, search-engine style).

The paper's host pipeline ultimately emits peptide-spectrum matches as
flat files; this module writes and reads the equivalent TSV report:
one row per retained PSM, annotated with the matched peptide's
sequence/modifications, so downstream tools (or the FDR module) can
consume search output without touching Python objects.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, TextIO, Union

from repro.chem.peptide import Peptide
from repro.errors import FormatError
from repro.search.psm import PSM, SearchResults

__all__ = ["write_psm_report", "read_psm_report"]

PathOrHandle = Union[str, Path, TextIO]

_COLUMNS = [
    "scan",
    "rank",
    "entry_id",
    "peptide",
    "score",
    "shared_peaks",
    "n_candidates",
]


def _open(target: PathOrHandle, mode: str):
    if isinstance(target, (str, Path)):
        return open(target, mode, encoding="ascii"), True
    return target, False


def write_psm_report(
    target: PathOrHandle,
    results: SearchResults,
    peptides: Sequence[Peptide],
) -> int:
    """Write ``results`` as a TSV report; returns PSM rows written.

    ``peptides`` is the entry universe (``database.entries``) used to
    annotate each PSM with its peptide string (mods rendered in
    bracket notation, e.g. ``PEPT[+15.995]IDEK``).

    Degraded results (``results.degraded_ranks`` /
    ``results.degraded_shards`` non-empty — partial database coverage)
    are annotated with leading ``# degraded_ranks: ...`` /
    ``# degraded_shards: ...`` comments so a partial report can never
    be mistaken for a full one downstream.
    """
    handle, owned = _open(target, "w")
    rows = 0
    try:
        if getattr(results, "degraded_ranks", ()):
            mask = ",".join(str(r) for r in results.degraded_ranks)
            handle.write(f"# degraded_ranks: {mask}\n")
        if getattr(results, "degraded_shards", ()):
            mask = ",".join(str(s) for s in results.degraded_shards)
            handle.write(f"# degraded_shards: {mask}\n")
        handle.write("\t".join(_COLUMNS) + "\n")
        for sr in results.spectra:
            for rank, psm in enumerate(sr.psms, start=1):
                peptide = peptides[psm.entry_id]
                handle.write(
                    "\t".join(
                        [
                            str(sr.scan_id),
                            str(rank),
                            str(psm.entry_id),
                            peptide.annotated(),
                            f"{psm.score:.6f}",
                            str(psm.shared_peaks),
                            str(sr.n_candidates),
                        ]
                    )
                    + "\n"
                )
                rows += 1
    finally:
        if owned:
            handle.close()
    return rows


def read_psm_report(source: PathOrHandle) -> List[PSM]:
    """Read a TSV report back into :class:`PSM` records.

    Peptide strings are not parsed back into objects (the entry id is
    the canonical reference); rows must carry the exact header the
    writer emits.
    """
    handle, owned = _open(source, "r")
    try:
        # Leading "#" lines are annotations (e.g. the degraded-coverage
        # mask the writer emits for partial results).
        header = handle.readline().rstrip("\n")
        while header.startswith("#"):
            header = handle.readline().rstrip("\n")
        if header.split("\t") != _COLUMNS:
            raise FormatError(f"unexpected PSM report header: {header!r}")
        psms: List[PSM] = []
        for lineno, line in enumerate(handle, start=2):
            line = line.rstrip("\n")
            if not line:
                continue
            fields = line.split("\t")
            if len(fields) != len(_COLUMNS):
                raise FormatError(
                    f"line {lineno}: expected {len(_COLUMNS)} fields, "
                    f"got {len(fields)}"
                )
            try:
                psms.append(
                    PSM(
                        scan_id=int(fields[0]),
                        entry_id=int(fields[2]),
                        score=float(fields[4]),
                        shared_peaks=int(fields[5]),
                    )
                )
            except ValueError:
                raise FormatError(f"line {lineno}: malformed row {line!r}") from None
        return psms
    finally:
        if owned:
            handle.close()
