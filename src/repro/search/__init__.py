"""Distributed peptide search engine (the LBDSLIM analogue).

Pipeline objects:

* :class:`~repro.search.database.IndexedDatabase` — base peptides plus
  their enumerated modified variants ("entries"), the unit LBE
  partitions and the SLM index stores.
* :class:`~repro.search.serial.SerialSearchEngine` — the shared-memory
  reference implementation (ground truth + baseline for Fig. 5).
* :class:`~repro.search.engine.DistributedSearchEngine` — the SPMD
  engine over the simulated cluster, with per-rank phase accounting.
* :mod:`~repro.search.metrics` — load imbalance (Eq. 1), wasted CPU
  time, speedup and Amdahl utilities used by the benchmark harness.
"""

from repro.search.database import DatabaseConfig, IndexedDatabase
from repro.search.costs import QueryCostModel, SerialCostModel
from repro.search.psm import PSM, SpectrumResult, SearchResults, RankStats
from repro.search.scoring import score_candidates, ScoringOutcome
from repro.search.serial import SerialSearchEngine
from repro.search.engine import DistributedSearchEngine, EngineConfig
from repro.search.fdr import (
    combined_target_decoy,
    estimate_fdr,
    make_decoy_peptides,
    qvalues,
)
from repro.search.report import read_psm_report, write_psm_report
from repro.search.metrics import (
    load_imbalance,
    wasted_cpu_time,
    policy_cpu_speedup,
    speedup_series,
    amdahl_speedup,
    estimate_serial_fraction,
)

__all__ = [
    "DatabaseConfig",
    "IndexedDatabase",
    "QueryCostModel",
    "SerialCostModel",
    "PSM",
    "SpectrumResult",
    "SearchResults",
    "RankStats",
    "score_candidates",
    "ScoringOutcome",
    "SerialSearchEngine",
    "DistributedSearchEngine",
    "EngineConfig",
    "load_imbalance",
    "wasted_cpu_time",
    "policy_cpu_speedup",
    "speedup_series",
    "amdahl_speedup",
    "estimate_serial_fraction",
    "combined_target_decoy",
    "estimate_fdr",
    "make_decoy_peptides",
    "qvalues",
    "read_psm_report",
    "write_psm_report",
]
