"""Peptide-spectrum-match (PSM) result containers.

The engine reports, per query spectrum, its candidate count (the
paper's "cPSM" unit, Section V-A) and the top-k scored matches in
*global entry id* space.  Aggregate counters and per-rank statistics
feed the metrics module and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["PSM", "SpectrumResult", "RankStats", "SearchResults"]


@dataclass(frozen=True, slots=True)
class PSM:
    """One candidate peptide-spectrum match.

    Attributes
    ----------
    scan_id:
        Query spectrum scan number.
    entry_id:
        Global index-entry id of the matched (possibly modified)
        peptide.
    score:
        Hyperscore-style match score (higher = better).
    shared_peaks:
        Shared-peak count from filtration.
    """

    scan_id: int
    entry_id: int
    score: float
    shared_peaks: int


@dataclass(slots=True)
class SpectrumResult:
    """Search outcome for one query spectrum.

    Attributes
    ----------
    scan_id:
        Query scan number.
    n_candidates:
        Total candidates that passed filtration (cPSMs).
    psms:
        Top-k PSMs, descending score (ties: ascending entry id).
    """

    scan_id: int
    n_candidates: int
    psms: List[PSM] = field(default_factory=list)

    @property
    def best(self) -> PSM | None:
        """Highest-scoring PSM, or ``None`` if nothing matched."""
        return self.psms[0] if self.psms else None


@dataclass(slots=True)
class RankStats:
    """Per-rank work counters and phase times (virtual seconds).

    Attributes
    ----------
    rank:
        Rank id.
    n_entries:
        Entries in this rank's partial index.
    n_ions:
        Ion entries in this rank's partial index.
    buckets_scanned / ions_scanned:
        Filtration work counters summed over all queries.
    candidates_scored:
        Candidates passed to the scorer.
    residues_scored:
        Total residues across scored candidates (scoring cost basis).
    build_time / query_time / comm_time:
        Seconds spent in each phase — virtual seconds under the
        simulated fabric, real wall seconds under the process backend.
    query_cpu_time:
        Query-phase process CPU seconds (real backends only; the
        simulated engine leaves 0).  On a core-per-worker machine this
        ≈ ``query_time``; on an oversubscribed one it is the
        dedicated-core-equivalent query time.
    """

    rank: int
    n_entries: int = 0
    n_ions: int = 0
    buckets_scanned: int = 0
    ions_scanned: int = 0
    candidates_scored: int = 0
    residues_scored: int = 0
    build_time: float = 0.0
    query_time: float = 0.0
    comm_time: float = 0.0
    query_cpu_time: float = 0.0

    @property
    def total_time(self) -> float:
        """Build + query + communication virtual time."""
        return self.build_time + self.query_time + self.comm_time


@dataclass(slots=True)
class SearchResults:
    """Complete outcome of a (serial or distributed) search.

    Attributes
    ----------
    spectra:
        Per-spectrum results, ascending scan id.
    rank_stats:
        One :class:`RankStats` per rank (a single pseudo-rank for the
        serial engine).
    phase_times:
        Master-side phase ledger (virtual seconds): keys include
        ``serial_prep``, ``build``, ``query``, ``merge``, ``total``.
    policy_name:
        Partition policy used (``"shared"`` for the serial engine).
    n_ranks:
        Ranks that executed the search.
    degraded_ranks:
        Ranks whose partition contributed **nothing** to these results
        (the service's opt-in ``degraded_ok`` mode after a rank's
        retries were exhausted).  Empty — full coverage — everywhere
        else; a non-empty mask means every candidate count and PSM
        list excludes those ranks' database partitions.  On the
        sharded tier the rank space is the flattened fleet (shard
        ``s``'s rank ``r`` appears as ``s * n_workers + r``).
    degraded_shards:
        Sharded serving tier only: shards whose **entire** mass range
        is missing from these results (every rank of the shard's pool
        failed, or its session broke, after retries).  Empty for the
        unsharded engines and for fully-covered sharded batches.
    """

    spectra: List[SpectrumResult]
    rank_stats: List[RankStats]
    phase_times: Dict[str, float]
    policy_name: str
    n_ranks: int
    degraded_ranks: Tuple[int, ...] = ()
    degraded_shards: Tuple[int, ...] = ()

    @property
    def is_degraded(self) -> bool:
        """True when these results cover only part of the database."""
        return bool(self.degraded_ranks) or bool(self.degraded_shards)

    @property
    def total_cpsms(self) -> int:
        """Total candidate PSMs across all spectra."""
        return sum(s.n_candidates for s in self.spectra)

    @property
    def cpsms_per_query(self) -> float:
        """Mean candidates per query (the paper's headline statistic)."""
        return self.total_cpsms / len(self.spectra) if self.spectra else 0.0

    @property
    def query_times(self) -> List[float]:
        """Per-rank query-phase virtual times (the LI inputs)."""
        return [rs.query_time for rs in self.rank_stats]

    @property
    def query_time(self) -> float:
        """Query-phase wall time: the slowest rank."""
        return max(self.query_times) if self.query_times else 0.0

    @property
    def execution_time(self) -> float:
        """End-to-end virtual time (master's total ledger)."""
        return self.phase_times.get("total", 0.0)

    def best_by_scan(self) -> Dict[int, PSM]:
        """Map scan id → best PSM (spectra with no PSMs are absent)."""
        out: Dict[int, PSM] = {}
        for sr in self.spectra:
            if sr.psms:
                out[sr.scan_id] = sr.psms[0]
        return out
