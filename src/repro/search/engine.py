"""The distributed search engine (LBDSLIM over the simulated cluster).

Execution follows the paper's Fig. 3/4 flow:

1. **Serial prep (master).**  Group base sequences (Algorithm 1),
   expand to entry space, partition with the configured policy, build
   the mapping table; virtual cost charged to rank 0.
2. **Manifest scatter.**  Rank 0 scatters each rank's global-entry-id
   manifest (communication charged through the cost model).
3. **Partial index build (parallel).**  Each rank builds an SLM index
   over its entries and discards everything else.
4. **Distributed querying (parallel).**  Every rank preprocesses and
   searches *all* query spectra against its partial index, tracking
   work counters; per-rank query-phase virtual durations are the load
   imbalance inputs (Fig. 6).
5. **Gather & merge (master).**  Ranks send per-spectrum candidate
   counts and local-id top-k matches; the master maps local → global
   ids through the O(1) mapping table and merges top-k lists.

The distributed result is bit-identical to the serial engine's (same
candidates, scores, tie-breaking) for every policy and rank count —
enforced by the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.core.grouping import GroupingConfig
from repro.core.mapping import MappingTable
from repro.core.partition import PartitionAssignment, make_policy
from repro.core.predict import WorkModel
from repro.core.planner import LBEPlan
from repro.errors import ConfigurationError
from repro.index.arena import concat_ranges
from repro.index.slm import SLMIndexSettings
from repro.mpi.comm import Communicator
from repro.mpi.launcher import run_spmd
from repro.mpi.simtime import CommCostModel
from repro.search.costs import QueryCostModel, SerialCostModel
from repro.search.database import IndexedDatabase
from repro.search.psm import RankStats, SearchResults, SpectrumResult
from repro.search.rank import (
    RankPayload,
    build_rank_index,
    merge_rank_payloads,
    run_rank_queries,
)
from repro.spectra.model import Spectrum
from repro.spectra.preprocess import PreprocessConfig, preprocess_batch
from repro.util.rng import rng_from

__all__ = ["EngineConfig", "DistributedSearchEngine", "make_lbe_plan"]


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Distributed engine configuration.

    Attributes
    ----------
    n_ranks:
        MPI process count ``p``.
    policy:
        Partition policy name: ``chunk`` / ``cyclic`` / ``random``.
    policy_seed:
        Seed for the Random policy's shuffles.
    grouping:
        Algorithm 1 parameters.
    index:
        SLM index/query settings.
    preprocess:
        Query peak-picking settings.
    top_k:
        PSMs retained per spectrum.
    query_costs / serial_costs:
        Virtual cost models.
    comm:
        Communication cost model of the simulated fabric.
    machine_jitter:
        Relative per-rank CPU speed spread (Gaussian σ).  The paper's
        cluster machines were only "nearly symmetrical" (Section
        V-A.4); this residual heterogeneity is what floors the
        balanced policies' imbalance at ~10–15 % instead of ~0.
        Set 0.0 for a perfectly homogeneous cluster.
    machine_seed:
        Seed of the per-rank speed draws (policy-independent, so every
        policy faces the same machines).
    cores_per_rank:
        Cores available to each MPI process for the hybrid
        OpenMP + MPI mode the paper announces as future work (§VIII).
        Parallel-phase compute charges (index build, filtration,
        scoring) are divided by the intra-rank Amdahl speedup; serial
        prep, preprocessing bookkeeping, and communication are not.
    intra_serial_fraction:
        Serial fraction of the *within-rank* work for the intra-rank
        Amdahl model (shared-memory engines parallelize the query loop
        almost perfectly; default 5 %).
    """

    n_ranks: int = 4
    policy: str = "cyclic"
    policy_seed: int = 0
    grouping: GroupingConfig = GroupingConfig()
    index: SLMIndexSettings = field(default_factory=SLMIndexSettings)
    preprocess: PreprocessConfig = PreprocessConfig()
    top_k: int = 5
    query_costs: QueryCostModel = QueryCostModel()
    serial_costs: SerialCostModel = SerialCostModel()
    comm: CommCostModel = CommCostModel()
    machine_jitter: float = 0.07
    machine_seed: int = 1234
    cores_per_rank: int = 1
    intra_serial_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ConfigurationError(f"n_ranks must be >= 1, got {self.n_ranks}")
        if self.top_k < 1:
            raise ConfigurationError(f"top_k must be >= 1, got {self.top_k}")
        if self.machine_jitter < 0:
            raise ConfigurationError(
                f"machine_jitter must be >= 0, got {self.machine_jitter}"
            )
        if self.cores_per_rank < 1:
            raise ConfigurationError(
                f"cores_per_rank must be >= 1, got {self.cores_per_rank}"
            )
        if not 0.0 <= self.intra_serial_fraction <= 1.0:
            raise ConfigurationError(
                "intra_serial_fraction must be in [0,1], got "
                f"{self.intra_serial_fraction}"
            )

    @property
    def intra_rank_speedup(self) -> float:
        """Amdahl speedup of one rank's ``cores_per_rank`` cores."""
        c, s = self.cores_per_rank, self.intra_serial_fraction
        return 1.0 / (s + (1.0 - s) / c)

    def machine_speed(self, rank: int) -> float:
        """Relative compute-cost multiplier of ``rank`` (1.0 = nominal).

        Drawn once per rank from ``N(1, machine_jitter)``, floored at
        0.5; a value of 1.1 means the rank takes 10 % longer for the
        same work.
        """
        if self.machine_jitter == 0.0:
            return 1.0
        draw = float(rng_from(self.machine_seed, "machine", rank).standard_normal())
        return max(0.5, 1.0 + self.machine_jitter * draw)


def make_lbe_plan(
    database: IndexedDatabase,
    *,
    n_ranks: int,
    policy: str,
    policy_seed: int = 0,
    grouping: GroupingConfig = GroupingConfig(),
    rank_speeds: Sequence[float] | None = None,
) -> LBEPlan:
    """Partition ``database`` at *base-sequence* granularity, then expand.

    The paper's clustered FASTA holds peptide sequences; each machine
    extracts its sequence partition and SLM-Transform enumerates the
    modified variants locally (Section III-D), so a base peptide and
    all its variants are colocated by construction.  The mapping table
    is still in entry-id space: each rank's entry manifest is the
    concatenation of its bases' contiguous entry ranges.

    Shared by every execution backend (simulated fabric, real
    processes): identical plans are what make their results
    comparable rank-for-rank.  ``rank_speeds`` feeds the predictive
    ``lpt`` policy (relative per-rank speeds; ``None`` = homogeneous).
    """
    base_grouping = database.group_bases(grouping)
    if policy == "lpt":
        # Predictive policy (paper §VIII): structural work model over
        # the bases; speeds come from the caller's machine model.
        model = WorkModel()
        weights = model.structural(
            database.entry_counts(),
            np.array(
                [p.length for p in database.base_peptides], dtype=np.float64
            ),
        )
        speeds = (
            list(rank_speeds) if rank_speeds is not None else [1.0] * n_ranks
        )
        policy_obj = make_policy(policy, weights=weights, speeds=speeds)
    else:
        policy_obj = make_policy(policy, seed=policy_seed)
    assignment: PartitionAssignment = policy_obj.assign(base_grouping, n_ranks)
    offsets = database.entry_offsets
    per_rank_entries = []
    for rank in range(n_ranks):
        base_ids = base_grouping.order[assignment.members(rank)]
        per_rank_entries.append(
            concat_ranges(offsets[base_ids], offsets[base_ids + 1])
        )
    mapping = MappingTable(per_rank_entries)
    return LBEPlan(
        grouping=base_grouping,
        assignment=assignment,
        mapping=mapping,
        n_ranks=n_ranks,
    )


class DistributedSearchEngine:
    """Distributed peptide search with LBE data distribution.

    Parameters
    ----------
    database:
        The indexed database (shared knowledge; each rank only *keeps*
        its own partition, as in the paper).
    config:
        Engine configuration.
    """

    def __init__(self, database: IndexedDatabase, config: EngineConfig) -> None:
        self.database = database
        self.config = config
        self._plan: LBEPlan | None = None

    # -- planning --------------------------------------------------------

    @property
    def plan(self) -> LBEPlan:
        """The LBE distribution plan (computed lazily, cached)."""
        if self._plan is None:
            self._plan = self._make_plan()
        return self._plan

    def _make_plan(self) -> LBEPlan:
        """The shared LBE plan, with ``lpt`` speeds from the machine model.

        ``machine_speed`` is a cost *multiplier*, so the predictive
        policy sees ``speed = 1 / multiplier``.
        """
        cfg = self.config
        return make_lbe_plan(
            self.database,
            n_ranks=cfg.n_ranks,
            policy=cfg.policy,
            policy_seed=cfg.policy_seed,
            grouping=cfg.grouping,
            rank_speeds=[
                1.0 / cfg.machine_speed(r) for r in range(cfg.n_ranks)
            ],
        )

    # -- execution ---------------------------------------------------------

    def run(self, spectra: Sequence[Spectrum]) -> SearchResults:
        """Search ``spectra``; returns merged results with phase times."""
        db = self.database
        cfg = self.config
        plan = self.plan
        spectra = list(spectra)
        arena = db.arena_for(cfg.index.fragmentation)
        # Quantize and bucket-sort once on the master arena; rank
        # sub-arenas inherit the bucket slice and a derived sort order
        # instead of re-running floor() and argsort() per rank.
        arena.buckets_for(cfg.index.resolution)
        arena.sort_order_for(cfg.index.resolution)
        # Every rank preprocesses every query (charged to its clock);
        # the computation is deterministic and rank-independent, so the
        # real work is hoisted out of the rank program and shared.
        processed_spectra = preprocess_batch(spectra, cfg.preprocess)

        def rank_program(comm: Communicator):
            stats = RankStats(rank=comm.rank)
            # Compute-cost multiplier: machine speed (heterogeneity)
            # over the hybrid intra-rank speedup (paper §VIII).
            speed = cfg.machine_speed(comm.rank) / cfg.intra_rank_speedup

            def charge(seconds: float) -> None:
                comm.charge_compute(seconds * speed)

            # Phase 1: serial prep on the master.
            if comm.is_master:
                comm.charge_compute(
                    cfg.serial_costs.prep_cost(db.n_entries, db.n_bases)
                )
                manifests = [
                    np.asarray(plan.rank_global_ids(r), dtype=np.int64)
                    for r in range(comm.size)
                ]
            else:
                manifests = None

            # Phase 2: manifest scatter.
            my_entry_ids = comm.scatter(manifests, root=0)

            # Phase 3: partial index build — the backend-agnostic body
            # carves a sub-arena in C from the shared arena (fragments,
            # masses, bucket caches all travel with the manifest) and
            # builds a peptide-free partial index over it.
            t0 = comm.clock.now
            my_arena, index = build_rank_index(arena, my_entry_ids, cfg.index)
            charge(cfg.query_costs.build_cost(len(index), index.n_ions))
            stats.n_entries = len(index)
            stats.n_ions = index.n_ions
            comm.barrier()
            stats.build_time = comm.clock.now - t0

            # Phase 4: distributed querying (every rank, every
            # spectrum) through the shared rank body; virtual time is
            # charged spectrum-by-spectrum from its work counters.
            t0 = comm.clock.now
            out = run_rank_queries(
                index,
                my_arena,
                my_entry_ids,
                processed_spectra,
                top_k=cfg.top_k,
            )
            for si in range(len(spectra)):
                charge(cfg.query_costs.per_spectrum_preprocess)
                charge(
                    cfg.query_costs.filter_cost_counts(
                        int(out.buckets_scanned[si]), int(out.ions_scanned[si])
                    )
                )
                charge(
                    cfg.query_costs.scoring_cost_counts(
                        int(out.candidates_scored[si]),
                        int(out.residues_scored[si]),
                    )
                )
            stats.buckets_scanned = int(out.buckets_scanned.sum())
            stats.ions_scanned = int(out.ions_scanned.sum())
            stats.candidates_scored = int(out.candidates_scored.sum())
            stats.residues_scored = int(out.residues_scored.sum())
            stats.query_time = comm.clock.now - t0

            # Phase 5: gather to master.
            t0 = comm.clock.now
            payload: RankPayload = out.payload
            gathered = comm.gather(payload, root=0)
            stats.comm_time = comm.clock.now - t0

            merged: List[SpectrumResult] | None = None
            if comm.is_master:
                merged, n_psms = merge_rank_payloads(
                    gathered, spectra, plan.mapping, cfg.top_k
                )
                comm.charge_compute(cfg.serial_costs.merge_cost(n_psms))
            return stats, merged

        spmd = run_spmd(rank_program, cfg.n_ranks, cost_model=cfg.comm)

        all_stats = [res[0] for res in spmd.results]
        merged = spmd.results[0][1]
        assert merged is not None  # master always merges
        master_clock = spmd.clock_times[0]

        prep = self.config.serial_costs.prep_cost(db.n_entries, db.n_bases)
        build = max(s.build_time for s in all_stats)
        query = max(s.query_time for s in all_stats)
        total_psms = sum(len(sr.psms) for sr in merged)
        phase_times = {
            "serial_prep": prep,
            "build": build,
            "query": query,
            "gather": max(s.comm_time for s in all_stats),
            "merge": self.config.serial_costs.merge_cost(total_psms),
            "total": master_clock,
        }

        return SearchResults(
            spectra=merged,
            rank_stats=all_stats,
            phase_times=phase_times,
            policy_name=cfg.policy,
            n_ranks=cfg.n_ranks,
        )

