"""Backend-agnostic rank-side execution of the distributed search.

Every execution backend runs the same per-rank body: carve the rank's
sub-arena from the shared fragment arena, build the partial SLM index,
filter and score every query spectrum through the batched kernels, and
keep each spectrum's top-k tie-broken by *global* entry id so per-rank
lists merge into exactly the serial engine's ordering.  This module is
that body, factored out of :class:`~repro.search.engine.DistributedSearchEngine`
so that

* the **simulated** engine (threads over the virtual MPI fabric) calls
  it and charges virtual time from the returned work counters,
* the **process** backend (:mod:`repro.parallel`) calls it inside real
  OS workers over a memmap-shared arena and reports real seconds,
* serial baselines can call it inline with a whole-database manifest.

One implementation is what makes the engines bit-identical by
construction rather than by parallel maintenance: the float operand
sequences, the candidate ordering, and the tie-breaking live here and
nowhere else.

Everything returned is plain numpy + builtins (picklable), because the
process backend ships :class:`RankQueryOutput` across a pipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.mapping import MappingTable
from repro.index.arena import FragmentArena, Workspace, thread_workspace
from repro.index.slm import SLMIndex, SLMIndexSettings
from repro.search.psm import RankStats, SpectrumResult
from repro.search.scoring import score_many
from repro.search.serial import top_k_psms
from repro.spectra.model import Spectrum

__all__ = [
    "RankPayload",
    "RankQueryOutput",
    "build_rank_index",
    "run_rank_queries",
    "merge_rank_payloads",
    "observed_rank_speeds",
    "summarize_rank_output",
    "rank_stats_from_report",
    "worker_spans_from_report",
]

#: Per-rank payload the master merges: (scan-order candidate counts,
#: per-scan (local ids, scores, shared-peak counts)).
RankPayload = Tuple[np.ndarray, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]]


@dataclass(slots=True)
class RankQueryOutput:
    """One rank's query-phase product plus per-spectrum work counters.

    Attributes
    ----------
    counts:
        int64, candidates that passed filtration per query spectrum.
    local_psms:
        Per spectrum: (local candidate ids, scores, shared-peak
        counts) of the rank's top-k, already globally tie-broken.
    buckets_scanned / ions_scanned:
        int64 per-spectrum filtration work counters.
    candidates_scored / residues_scored:
        int64 per-spectrum scoring work counters.

    The counters are arrays rather than totals so the simulated engine
    can charge virtual time spectrum-by-spectrum, exactly as it did
    when the loop lived inside its rank program.
    """

    counts: np.ndarray
    local_psms: List[Tuple[np.ndarray, np.ndarray, np.ndarray]]
    buckets_scanned: np.ndarray
    ions_scanned: np.ndarray
    candidates_scored: np.ndarray
    residues_scored: np.ndarray

    @property
    def payload(self) -> RankPayload:
        """The (counts, psms) pair the master-side merge consumes."""
        return self.counts, self.local_psms


def build_rank_index(
    arena: FragmentArena,
    entry_ids: np.ndarray,
    settings: SLMIndexSettings,
) -> Tuple[FragmentArena, SLMIndex]:
    """Carve ``entry_ids``'s sub-arena and build the rank's partial index.

    The sub-arena is gathered in C from the (possibly memmap-backed)
    master arena — fragments, masses, and any cached bucket
    quantizations and sort orders travel with the manifest, so the
    rank never re-quantizes or re-argsorts.  The index is built
    **peptide-free** (local ids are manifest positions; masses come
    from the arena), and the sub-arena's quantization caches are
    dropped after the build: scoring only needs the flat m/z data.
    """
    ids = np.asarray(entry_ids, dtype=np.int64)
    sub = arena.take(ids)
    index = SLMIndex(None, settings, arena=sub)
    sub.drop_quantization_caches()
    return sub, index


def run_rank_queries(
    index: SLMIndex,
    sub_arena: FragmentArena,
    entry_ids: np.ndarray,
    spectra: Sequence[Spectrum],
    *,
    top_k: int,
    workspace: Workspace | None = None,
) -> RankQueryOutput:
    """Filter + score every (preprocessed) spectrum against ``index``.

    ``entry_ids`` maps the index's local ids back to global entry ids;
    the per-spectrum top-k is tie-broken by (score desc, **global** id
    asc) so the per-rank lists agree with the serial engine's global
    ordering (local-id order is grouped-order, not global order).
    """
    entry_ids = np.asarray(entry_ids, dtype=np.int64)
    ws = workspace if workspace is not None else thread_workspace()
    filtered = index.filter_many(spectra, workspace=ws)
    outcomes = score_many(
        spectra,
        [f.candidates for f in filtered],
        fragment_tolerance=index.settings.fragment_tolerance,
        fragmentation=index.settings.fragmentation,
        arena=sub_arena,
        workspace=ws,
    )
    n = len(filtered)
    counts = np.zeros(n, dtype=np.int64)
    buckets = np.zeros(n, dtype=np.int64)
    ions = np.zeros(n, dtype=np.int64)
    cands = np.zeros(n, dtype=np.int64)
    residues = np.zeros(n, dtype=np.int64)
    local_psms: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for si, (fres, outcome) in enumerate(zip(filtered, outcomes)):
        buckets[si] = fres.buckets_scanned
        ions[si] = fres.ions_scanned
        cands[si] = outcome.candidates_scored
        residues[si] = outcome.residues_scored
        counts[si] = fres.candidates.size
        keep = (
            np.lexsort((entry_ids[fres.candidates], -outcome.scores))[:top_k]
            if fres.candidates.size
            else np.empty(0, dtype=np.int64)
        )
        local_psms.append(
            (
                fres.candidates[keep].astype(np.int64),
                outcome.scores[keep],
                fres.shared_peaks[keep].astype(np.int64),
            )
        )
    return RankQueryOutput(
        counts=counts,
        local_psms=local_psms,
        buckets_scanned=buckets,
        ions_scanned=ions,
        candidates_scored=cands,
        residues_scored=residues,
    )


def merge_rank_payloads(
    gathered: Sequence[RankPayload],
    spectra: Sequence[Spectrum],
    mapping: MappingTable,
    top_k: int,
) -> Tuple[List[SpectrumResult], int]:
    """Combine per-rank payloads into global results (master side).

    Local ids are translated through the mapping table (one array
    access per id, as in the paper's Fig. 4); candidate counts add
    up; top-k lists merge by (score desc, entry id asc).  Returns the
    per-spectrum results and the total PSM count (the merge-cost
    basis).

    A ``None`` entry in ``gathered`` is a **degraded rank** (the
    service's ``degraded_ok`` mode after retries exhausted): it
    contributes no candidates and no PSMs — the caller carries the
    coverage mask (:attr:`~repro.search.psm.SearchResults.degraded_ranks`)
    so partial results are always explicit, never silent.
    """
    results: List[SpectrumResult] = []
    total_psms = 0
    for si, spectrum in enumerate(spectra):
        gids_parts: List[np.ndarray] = []
        scores_parts: List[np.ndarray] = []
        shared_parts: List[np.ndarray] = []
        n_candidates = 0
        for rank, payload in enumerate(gathered):
            if payload is None:
                continue
            counts, local_psms = payload
            n_candidates += int(counts[si])
            local_ids, scores, shared = local_psms[si]
            if local_ids.size:
                gids_parts.append(mapping.to_global_batch(rank, local_ids))
                scores_parts.append(scores)
                shared_parts.append(shared)
        if gids_parts:
            gids = np.concatenate(gids_parts)
            scores = np.concatenate(scores_parts)
            shared = np.concatenate(shared_parts)
        else:
            gids = np.empty(0, dtype=np.int64)
            scores = np.empty(0, dtype=np.float64)
            shared = np.empty(0, dtype=np.int64)
        psms = top_k_psms(spectrum.scan_id, gids, scores, shared, top_k)
        total_psms += len(psms)
        results.append(
            SpectrumResult(
                scan_id=spectrum.scan_id,
                n_candidates=n_candidates,
                psms=psms,
            )
        )
    return results, total_psms


def observed_rank_speeds(
    work_shares: Sequence[float],
    wall_s: Sequence[float],
    *,
    floor: float = 0.05,
) -> np.ndarray:
    """Infer relative rank speeds from observed per-rank wall times.

    ``work_shares`` is each rank's predicted work under the plan that
    produced the observation (see :meth:`~repro.core.planner.LBEPlan.rank_loads`);
    ``wall_s`` the per-rank query wall times (typically window means).
    A rank's speed is work-per-wall-second — dividing out the shares is
    what separates "slow because overloaded" (which re-planning at
    equal speeds already fixes) from "slow because the *host* is slow"
    (which needs a smaller share).  Speeds are normalized to unit mean
    (only ratios matter to weighted LPT) and clamped to ``floor`` so a
    stalled rank keeps a nonzero share — it must keep receiving work,
    or its recovery could never be observed.  Ranks with no signal
    (zero wall or zero share, e.g. freshly grown or degraded) report
    the mean speed 1.0.
    """
    shares = np.asarray(work_shares, dtype=np.float64)
    walls = np.asarray(wall_s, dtype=np.float64)
    if shares.shape != walls.shape or shares.ndim != 1 or not shares.size:
        raise ValueError(
            f"work_shares {shares.shape} and wall_s {walls.shape} must be "
            f"equal-length non-empty vectors"
        )
    if not 0.0 < floor <= 1.0:
        raise ValueError(f"floor must be in (0, 1], got {floor}")
    valid = (walls > 0.0) & (shares > 0.0)
    speeds = np.ones(shares.size, dtype=np.float64)
    if valid.any():
        speeds[valid] = shares[valid] / walls[valid]
        speeds[~valid] = speeds[valid].mean()
    mean = speeds.mean()
    if mean > 0:
        speeds = speeds / mean
    return np.maximum(speeds, floor)


def summarize_rank_output(out: RankQueryOutput) -> dict:
    """Flatten a :class:`RankQueryOutput` into a picklable report dict.

    This is the merge payload plus summed work counters — the common
    core of every worker-side report (the one-shot process backend and
    the persistent service add their own timing keys on top).  Keeping
    the dict shape in one place is what keeps the master-side merge
    and :func:`rank_stats_from_report` in lockstep across backends.
    """
    return {
        "counts": out.counts,
        "local_psms": out.local_psms,
        "buckets_scanned": int(out.buckets_scanned.sum()),
        "ions_scanned": int(out.ions_scanned.sum()),
        "candidates_scored": int(out.candidates_scored.sum()),
        "residues_scored": int(out.residues_scored.sum()),
    }


def rank_stats_from_report(rank: int, report: dict) -> RankStats:
    """Build one rank's :class:`RankStats` from a worker report dict.

    Absent keys default to 0 — a resident worker's *query* report
    carries no ``build_s`` because that cost was paid once at attach
    time, and its *attach* report carries no query counters because no
    spectrum has been searched yet.
    """
    return RankStats(
        rank=rank,
        n_entries=int(report.get("n_entries", 0)),
        n_ions=int(report.get("n_ions", 0)),
        buckets_scanned=int(report.get("buckets_scanned", 0)),
        ions_scanned=int(report.get("ions_scanned", 0)),
        candidates_scored=int(report.get("candidates_scored", 0)),
        residues_scored=int(report.get("residues_scored", 0)),
        build_time=float(report.get("build_s", 0.0)),
        query_time=float(report.get("query_s", 0.0)),
        comm_time=float(report.get("open_s", 0.0)),
        query_cpu_time=float(report.get("query_cpu_s", 0.0)),
    )


def worker_spans_from_report(
    report: dict, anchor: float
) -> List[Tuple[str, float, float]]:
    """Re-anchor a worker report's relative spans on the master clock.

    Workers ship spans as ``(name, start, dur)`` with ``start``
    relative to their own round start — ``perf_counter`` readings are
    not comparable across processes.  ``anchor`` is the master-clock
    instant the round was dispatched, so the returned absolute spans
    nest (modulo pipe latency) under the master's ``collect`` span.
    Reports without a ``spans`` key (attach reports, older workers)
    yield an empty list.
    """
    out: List[Tuple[str, float, float]] = []
    for entry in report.get("spans", ()):
        name, rel_start, dur = entry
        out.append((str(name), anchor + float(rel_start), float(dur)))
    return out
