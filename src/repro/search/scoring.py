"""Candidate scoring: the expensive spectrum-to-spectrum comparison.

Filtration (shared-peak counting in the index) is cheap; the paper's
"computationally expensive spectrum-to-spectrum comparison operations"
happen on the filtered survivors.  We implement a hyperscore-style
score (as in X!Tandem/MSFragger): regenerate the candidate's fragments
and match them against the query peaks within the fragment tolerance::

    score = ln(n_matched!) + ln(1 + sum of matched intensities)

``ln(n!)`` is evaluated as ``lgamma(n + 1)``.  The scorer reports work
counters (candidates, residues) that the engine converts into virtual
time — scoring cost scales with peptide length, one of the two
mechanisms that make contiguous (length-sorted) Chunk partitions
imbalanced.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import lgamma
from typing import Sequence

import numpy as np

from repro.chem.fragments import FragmentationSettings, fragment_mzs
from repro.chem.peptide import Peptide
from repro.spectra.model import Spectrum

__all__ = ["ScoringOutcome", "score_candidates"]


@dataclass(slots=True)
class ScoringOutcome:
    """Scores plus work counters for one spectrum's candidate set.

    Attributes
    ----------
    scores:
        Hyperscore per candidate (aligned with the candidate ids the
        caller supplied).
    n_matched:
        Matched-fragment count per candidate.
    candidates_scored:
        Number of candidates scored (== len(scores)).
    residues_scored:
        Total residues over scored candidates (virtual-cost basis).
    """

    scores: np.ndarray
    n_matched: np.ndarray
    candidates_scored: int
    residues_scored: int


def _matched_mask(
    theoretical: np.ndarray, query_mzs: np.ndarray, tolerance: float
) -> np.ndarray:
    """Boolean mask over ``theoretical``: within ``tolerance`` of any query peak.

    ``query_mzs`` must be ascending (guaranteed by
    :class:`~repro.spectra.model.Spectrum`).
    """
    if theoretical.size == 0 or query_mzs.size == 0:
        return np.zeros(theoretical.shape, dtype=bool)
    pos = np.searchsorted(query_mzs, theoretical)
    left = np.clip(pos - 1, 0, query_mzs.size - 1)
    right = np.clip(pos, 0, query_mzs.size - 1)
    d_left = np.abs(theoretical - query_mzs[left])
    d_right = np.abs(theoretical - query_mzs[right])
    return np.minimum(d_left, d_right) <= tolerance


def score_candidates(
    spectrum: Spectrum,
    peptides: Sequence[Peptide],
    candidate_ids: np.ndarray,
    *,
    fragment_tolerance: float,
    fragmentation: FragmentationSettings = FragmentationSettings(),
    fragments: Sequence[np.ndarray] | None = None,
) -> ScoringOutcome:
    """Score each candidate peptide against ``spectrum``.

    Parameters
    ----------
    spectrum:
        The (preprocessed) query spectrum.
    peptides:
        The peptide universe ``candidate_ids`` indexes into.
    candidate_ids:
        Ids of filtration survivors.
    fragment_tolerance:
        ΔF in Da for fragment matching.
    fragmentation:
        Which ion series the candidates' theoretical spectra use (must
        match the index settings for consistent shared-peak counts).
    fragments:
        Optional precomputed fragment arrays aligned with ``peptides``;
        skips per-candidate fragment regeneration.
    """
    n = int(candidate_ids.size)
    if n == 0:
        return ScoringOutcome(
            scores=np.zeros(0, dtype=np.float64),
            n_matched=np.zeros(0, dtype=np.int32),
            candidates_scored=0,
            residues_scored=0,
        )
    q_mzs = spectrum.mzs
    q_int = spectrum.intensities
    residues = 0
    theo_parts: list[np.ndarray] = []
    sizes = np.zeros(n, dtype=np.int64)
    for i, cid in enumerate(candidate_ids):
        pep = peptides[int(cid)]
        residues += pep.length
        theo = (
            fragments[int(cid)]
            if fragments is not None
            else fragment_mzs(pep, fragmentation)
        )
        theo_parts.append(theo)
        sizes[i] = theo.size

    # Batch all candidates' fragments: one mask/nearest computation,
    # then per-candidate segment sums via cumulative-sum differences
    # (robust to zero-length segments, unlike reduceat).
    theo_all = (
        np.concatenate(theo_parts) if theo_parts else np.empty(0, dtype=np.float64)
    )
    bounds = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    mask = _matched_mask(theo_all, q_mzs, fragment_tolerance)

    mask_cum = np.zeros(theo_all.size + 1, dtype=np.int64)
    np.cumsum(mask, out=mask_cum[1:])
    matched = (mask_cum[bounds[1:]] - mask_cum[bounds[:-1]]).astype(np.int32)

    # Intensity credit: for each matched theoretical fragment, the
    # intensity of its nearest query peak.
    credit = np.zeros(theo_all.size, dtype=np.float64)
    if q_mzs.size and theo_all.size:
        pos = np.searchsorted(q_mzs, theo_all)
        left = np.clip(pos - 1, 0, q_mzs.size - 1)
        right = np.clip(pos, 0, q_mzs.size - 1)
        use_left = np.abs(theo_all - q_mzs[left]) <= np.abs(theo_all - q_mzs[right])
        nearest = np.where(use_left, left, right)
        credit = np.where(mask, q_int[nearest], 0.0)
    # Per-candidate sums must not depend on neighbouring candidates
    # (bit-identical scores regardless of which rank scores which
    # subset), so use reduceat — each segment is folded independently.
    intensity_sums = np.zeros(n, dtype=np.float64)
    if theo_all.size:
        starts = np.minimum(bounds[:-1], theo_all.size - 1)
        seg = np.add.reduceat(credit, starts)
        nonempty = sizes > 0
        intensity_sums[nonempty] = seg[nonempty]

    scores = np.where(
        matched > 0,
        _lgamma_vec(matched + 1.0) + np.log1p(intensity_sums),
        0.0,
    )
    return ScoringOutcome(
        scores=scores,
        n_matched=matched,
        candidates_scored=n,
        residues_scored=residues,
    )


#: Vectorized ln(Γ(x)); scipy-free (math.lgamma broadcast by numpy).
_lgamma_vec = np.vectorize(lgamma, otypes=[np.float64])
