"""Candidate scoring: the expensive spectrum-to-spectrum comparison.

Filtration (shared-peak counting in the index) is cheap; the paper's
"computationally expensive spectrum-to-spectrum comparison operations"
happen on the filtered survivors.  We implement a hyperscore-style
score (as in X!Tandem/MSFragger): regenerate the candidate's fragments
and match them against the query peaks within the fragment tolerance::

    score = ln(n_matched!) + ln(1 + sum of matched intensities)

``ln(n!)`` is evaluated as ``lgamma(n + 1)``.  The scorer reports work
counters (candidates, residues) that the engine converts into virtual
time — scoring cost scales with peptide length, one of the two
mechanisms that make contiguous (length-sorted) Chunk partitions
imbalanced.

Two candidate-assembly paths exist, bit-identical by construction:

* **arena** (hot path): all candidate fragments are gathered from a
  flat :class:`~repro.index.arena.FragmentArena` with one vectorized
  range concatenation — no per-candidate Python loop — and residue
  counters come from the arena's ``lengths`` array,
* **legacy**: per-candidate arrays from ``fragments`` (or regenerated
  with :func:`~repro.chem.fragments.fragment_mzs`) are concatenated in
  candidate order.  Kept as the reference the equivalence tests pin
  the arena path against.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import lgamma
from typing import List, Sequence

import numpy as np

from repro.chem.fragments import FragmentationSettings, fragment_mzs
from repro.chem.peptide import Peptide
from repro.errors import ConfigurationError
from repro.index.arena import FragmentArena, Workspace, thread_workspace
from repro.spectra.model import Spectrum

__all__ = ["ScoringOutcome", "score_candidates", "score_many"]


@dataclass(slots=True)
class ScoringOutcome:
    """Scores plus work counters for one spectrum's candidate set.

    Attributes
    ----------
    scores:
        Hyperscore per candidate (aligned with the candidate ids the
        caller supplied).
    n_matched:
        Matched-fragment count per candidate.
    candidates_scored:
        Number of candidates scored (== len(scores)).
    residues_scored:
        Total residues over scored candidates (virtual-cost basis).
    """

    scores: np.ndarray
    n_matched: np.ndarray
    candidates_scored: int
    residues_scored: int


def _matched_mask(
    theoretical: np.ndarray, query_mzs: np.ndarray, tolerance: float
) -> np.ndarray:
    """Boolean mask over ``theoretical``: within ``tolerance`` of any query peak.

    ``query_mzs`` must be ascending (guaranteed by
    :class:`~repro.spectra.model.Spectrum`).
    """
    if theoretical.size == 0 or query_mzs.size == 0:
        return np.zeros(theoretical.shape, dtype=bool)
    pos = np.searchsorted(query_mzs, theoretical)
    left = np.clip(pos - 1, 0, query_mzs.size - 1)
    right = np.clip(pos, 0, query_mzs.size - 1)
    d_left = np.abs(theoretical - query_mzs[left])
    d_right = np.abs(theoretical - query_mzs[right])
    return np.minimum(d_left, d_right) <= tolerance


def score_candidates(
    spectrum: Spectrum,
    peptides: Sequence[Peptide] | None,
    candidate_ids: np.ndarray,
    *,
    fragment_tolerance: float,
    fragmentation: FragmentationSettings = FragmentationSettings(),
    fragments: Sequence[np.ndarray] | None = None,
    arena: FragmentArena | None = None,
    workspace: Workspace | None = None,
) -> ScoringOutcome:
    """Score each candidate peptide against ``spectrum``.

    Parameters
    ----------
    spectrum:
        The (preprocessed) query spectrum.
    peptides:
        The peptide universe ``candidate_ids`` indexes into.  May be
        ``None`` when ``arena`` carries per-entry ``lengths``.
    candidate_ids:
        Ids of filtration survivors.
    fragment_tolerance:
        ΔF in Da for fragment matching.
    fragmentation:
        Which ion series the candidates' theoretical spectra use (must
        match the index settings for consistent shared-peak counts).
    fragments:
        Optional precomputed fragment arrays aligned with ``peptides``;
        skips per-candidate fragment regeneration.
    arena:
        Optional flat fragment arena aligned with the id space; the
        hot path (vectorized gather, no per-candidate loop).  Takes
        precedence over ``fragments``.
    workspace:
        Scratch-buffer workspace for the gather/credit temporaries;
        defaults to the calling thread's shared workspace.  Engines
        pass one workspace through filtration and scoring so the whole
        query phase reuses the same warm buffers.
    """
    n = int(candidate_ids.size)
    if n == 0:
        return ScoringOutcome(
            scores=np.zeros(0, dtype=np.float64),
            n_matched=np.zeros(0, dtype=np.int32),
            candidates_scored=0,
            residues_scored=0,
        )
    ws = workspace if workspace is not None else thread_workspace()
    if arena is not None:
        cids = np.asarray(candidate_ids, dtype=np.int64)
        theo_all, sizes = arena.gather_flat(cids, workspace=ws)
        if arena.lengths is not None:
            residues = int(arena.lengths[cids].sum())
        elif peptides is not None:
            residues = sum(peptides[int(c)].length for c in cids)
        else:
            raise ConfigurationError(
                "score_candidates needs peptides when the arena has no lengths"
            )
    else:
        if peptides is None:
            raise ConfigurationError(
                "score_candidates needs peptides when no arena is given"
            )
        residues = 0
        theo_parts: list[np.ndarray] = []
        sizes = np.zeros(n, dtype=np.int64)
        for i, cid in enumerate(candidate_ids):
            pep = peptides[int(cid)]
            residues += pep.length
            theo = (
                fragments[int(cid)]
                if fragments is not None
                else fragment_mzs(pep, fragmentation)
            )
            theo_parts.append(theo)
            sizes[i] = theo.size
        theo_all = (
            np.concatenate(theo_parts) if theo_parts else np.empty(0, dtype=np.float64)
        )

    q_mzs = spectrum.mzs
    q_int = spectrum.intensities
    # Batch all candidates' fragments: one mask/nearest computation,
    # then per-candidate segment sums via cumulative-sum differences
    # (robust to zero-length segments, unlike reduceat).
    bounds = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])

    m = theo_all.size
    intensity_sums = np.zeros(n, dtype=np.float64)
    if q_mzs.size and m:
        # One fused pass computes the match mask over every gathered
        # fragment — the same formulas the separate mask/credit passes
        # evaluated (bit-identical), but without the duplicate
        # searchsorted/|Δ| work, and folded into scratch buffers so
        # the per-spectrum loop allocates almost nothing.
        qn = q_mzs.size
        pos = np.searchsorted(q_mzs, theo_all)
        left = ws.take("score.left", m, np.int64)
        np.subtract(pos, 1, out=left)
        np.maximum(left, 0, out=left)
        right = pos
        np.minimum(right, qn - 1, out=right)
        d_left = ws.take("score.d_left", m, np.float64)
        np.take(q_mzs, left, out=d_left)
        np.subtract(theo_all, d_left, out=d_left)
        np.abs(d_left, out=d_left)
        d_right = ws.take("score.d_right", m, np.float64)
        np.take(q_mzs, right, out=d_right)
        np.subtract(theo_all, d_right, out=d_right)
        np.abs(d_right, out=d_right)
        use_left = ws.take("score.use_left", m, np.bool_)
        np.less_equal(d_left, d_right, out=use_left)
        mask = ws.take("score.mask", m, np.bool_)
        np.minimum(d_left, d_right, out=d_left)
        np.less_equal(d_left, fragment_tolerance, out=mask)

        mask_cum = ws.take("score.mask_cum", m + 1, np.int64)
        mask_cum[0] = 0
        np.cumsum(mask, out=mask_cum[1:])
        matched = (mask_cum[bounds[1:]] - mask_cum[bounds[:-1]]).astype(np.int32)

        # Intensity credit: for each matched theoretical fragment, the
        # intensity of its nearest query peak.  The credit vector must
        # keep its zeros for unmatched positions: the segment fold
        # below uses pairwise summation, so the reduction tree — and
        # with it the last-ulp rounding — depends on element *count*,
        # not just the nonzero values.
        nearest = right
        np.copyto(nearest, left, where=use_left)
        credit = ws.take("score.credit", m, np.float64)
        np.take(q_int, nearest, out=credit)
        unmatched = use_left
        np.logical_not(mask, out=unmatched)
        credit[unmatched] = 0.0

        # Per-candidate sums must not depend on neighbouring
        # candidates (bit-identical scores regardless of which rank
        # scores which subset), so use reduceat — each segment is
        # folded independently.
        seg_starts = np.minimum(bounds[:-1], m - 1)
        seg = np.add.reduceat(credit, seg_starts)
        nonempty = sizes > 0
        intensity_sums[nonempty] = seg[nonempty]
    else:
        matched = np.zeros(n, dtype=np.int32)

    scores = np.where(
        matched > 0,
        _lgamma_counts(matched) + np.log1p(intensity_sums),
        0.0,
    )
    return ScoringOutcome(
        scores=scores,
        n_matched=matched,
        candidates_scored=n,
        residues_scored=residues,
    )


def score_many(
    spectra: Sequence[Spectrum],
    candidate_lists: Sequence[np.ndarray],
    *,
    fragment_tolerance: float,
    fragmentation: FragmentationSettings = FragmentationSettings(),
    arena: FragmentArena | None = None,
    peptides: Sequence[Peptide] | None = None,
    fragments: Sequence[np.ndarray] | None = None,
    workspace: Workspace | None = None,
) -> List[ScoringOutcome]:
    """Score many spectra's candidate sets in one batched call.

    ``candidate_lists[i]`` holds the candidate ids of ``spectra[i]``;
    outcomes align with the inputs and are identical to per-spectrum
    :func:`score_candidates` calls.  The batched entry point keeps the
    engines' per-spectrum loops allocation-light: the gather/credit
    scratch stays warm across the whole run.
    """
    if len(spectra) != len(candidate_lists):
        raise ConfigurationError(
            f"{len(spectra)} spectra for {len(candidate_lists)} candidate lists"
        )
    return [
        score_candidates(
            s,
            peptides,
            cands,
            fragment_tolerance=fragment_tolerance,
            fragmentation=fragmentation,
            fragments=fragments,
            arena=arena,
            workspace=workspace,
        )
        for s, cands in zip(spectra, candidate_lists)
    ]


#: Vectorized ln(Γ(x)); scipy-free (math.lgamma broadcast by numpy).
_lgamma_vec = np.vectorize(lgamma, otypes=[np.float64])

#: Growable table of ``lgamma(k + 1)`` for k = 0, 1, … — matched
#: counts are small integers, so a lookup replaces the per-element
#: ``np.vectorize`` Python overhead.  Entries are produced by the same
#: ``_lgamma_vec`` the direct evaluation used, so scores stay
#: bit-identical.  Replaced atomically on growth (thread-safe: stale
#: readers just use the old, equally-correct table).
_LGAMMA_TABLE = _lgamma_vec(np.arange(64, dtype=np.float64) + 1.0)


def _lgamma_counts(counts: np.ndarray) -> np.ndarray:
    """``lgamma(counts + 1.0)`` for a non-negative int array, via table."""
    global _LGAMMA_TABLE
    table = _LGAMMA_TABLE
    top = int(counts.max(initial=0))
    if top >= table.size:
        table = _lgamma_vec(
            np.arange(max(top + 1, 2 * table.size), dtype=np.float64) + 1.0
        )
        _LGAMMA_TABLE = table
    return table[counts]
