"""Virtual time for the simulated cluster.

Each rank owns a :class:`VirtualClock`.  Compute work advances a clock
explicitly (the search engine charges its deterministic work counters
times calibrated per-op costs); communication advances clocks through
the :class:`CommCostModel` (latency + payload size / bandwidth, with a
log2-tree factor for collectives, matching textbook MPI cost models).

Virtual time is what all figures report: it is reproducible across
machines and schedulers, unlike wall time on a shared 2-core container.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from math import ceil, log2

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["VirtualClock", "CommCostModel", "payload_nbytes"]


class VirtualClock:
    """A monotonically advancing per-rank clock (seconds)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ConfigurationError(f"clock cannot start negative, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance by ``seconds`` (>= 0); returns the new time."""
        if seconds < 0:
            raise ConfigurationError(f"cannot advance clock by {seconds}")
        self._now += float(seconds)
        return self._now

    def sync_to(self, other_time: float) -> float:
        """Move forward to ``other_time`` if it is later; returns now."""
        if other_time > self._now:
            self._now = float(other_time)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock({self._now:.6f}s)"


def payload_nbytes(obj: object) -> int:
    """Wire size of a message payload in bytes.

    numpy arrays count their buffer (the fast mpi4py path); everything
    else is measured by its pickle, mirroring mpi4py's lowercase
    (pickle-based) methods.  Deterministic for deterministic payloads.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 96  # header estimate
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (list, tuple)) and all(
        isinstance(x, np.ndarray) for x in obj
    ) and obj:
        return sum(int(x.nbytes) + 96 for x in obj)  # type: ignore[union-attr]
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


@dataclass(frozen=True, slots=True)
class CommCostModel:
    """Latency/bandwidth communication cost model.

    Defaults approximate the gigabit-Ethernet cluster of the paper's
    testbed: ~50 µs MPI latency, ~1 GB/s effective bandwidth.

    Attributes
    ----------
    latency:
        Per-message fixed cost in seconds.
    seconds_per_byte:
        Inverse bandwidth.
    """

    latency: float = 50e-6
    seconds_per_byte: float = 1.0e-9

    def __post_init__(self) -> None:
        if self.latency < 0 or self.seconds_per_byte < 0:
            raise ConfigurationError("communication costs must be >= 0")

    def p2p(self, nbytes: int) -> float:
        """Cost of one point-to-point message of ``nbytes``."""
        return self.latency + nbytes * self.seconds_per_byte

    def collective(self, nbytes: int, n_ranks: int) -> float:
        """Cost of a tree-structured collective over ``n_ranks``.

        Textbook model: ``ceil(log2 p)`` rounds, each costing one p2p
        message of the payload size.
        """
        if n_ranks <= 1:
            return 0.0
        rounds = ceil(log2(n_ranks))
        return rounds * self.p2p(nbytes)
