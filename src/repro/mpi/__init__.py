"""Distributed-memory substrate: a simulated MPI runtime.

The paper runs on MPICH/OpenMPI over 4 machines.  Offline we provide a
message-passing runtime with an mpi4py-like API whose *timing* is
virtual: every rank owns a :class:`~repro.mpi.simtime.VirtualClock`
advanced by explicit compute charges and by a latency/bandwidth
communication cost model.  Rank code executes for real (in threads);
only the clock is simulated, which makes load-imbalance and speedup
experiments deterministic — see DESIGN.md §2 for why this substitution
preserves the paper's measured quantities.

Public API:

* :class:`~repro.mpi.simtime.VirtualClock`,
  :class:`~repro.mpi.simtime.CommCostModel`,
  :func:`~repro.mpi.simtime.payload_nbytes`
* :class:`~repro.mpi.comm.Communicator` — p2p and collectives
* :func:`~repro.mpi.launcher.run_spmd` — SPMD program launcher
"""

from repro.mpi.simtime import CommCostModel, VirtualClock, payload_nbytes
from repro.mpi.comm import Communicator
from repro.mpi.launcher import SpmdResult, run_spmd

__all__ = [
    "CommCostModel",
    "VirtualClock",
    "payload_nbytes",
    "Communicator",
    "SpmdResult",
    "run_spmd",
]
