"""The simulated-MPI communicator.

Rank code receives a :class:`Communicator` (the analogue of
``MPI.COMM_WORLD``) exposing the mpi4py-style lowercase object API:

* point-to-point: :meth:`Communicator.send` / :meth:`Communicator.recv`
* collectives: :meth:`barrier`, :meth:`bcast`, :meth:`scatter`,
  :meth:`gather`, :meth:`allgather`, :meth:`allreduce`, :meth:`reduce`

Semantics match MPI where it matters for correctness: per
(source, destination, tag) channels are FIFO; collectives must be
entered by every rank; ``gather``/``scatter`` order payloads by rank.

Timing: every operation advances the calling rank's
:class:`~repro.mpi.simtime.VirtualClock` according to the
:class:`~repro.mpi.simtime.CommCostModel`; receives additionally
synchronize the receiver's clock to the message's (virtual) arrival
time, so causality holds in virtual time even though threads execute
in arbitrary real order.

Deadlock guard: blocking receives time out after ``timeout`` real
seconds and raise :class:`~repro.errors.CommunicatorError` instead of
hanging the test suite.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CommunicatorError
from repro.mpi.simtime import CommCostModel, VirtualClock, payload_nbytes

__all__ = ["Communicator", "Fabric"]

#: Default tag (mirrors MPI's convention of tag 0 for untagged traffic).
_DEFAULT_TAG = 0


@dataclass(slots=True)
class _Message:
    payload: Any
    depart_time: float


class Fabric:
    """Shared state connecting the communicators of one SPMD run.

    Holds the per-channel FIFO queues, the reusable barrier, and the
    clock registry.  Users never construct a Fabric directly; the
    launcher does.
    """

    #: Poll interval (real seconds) for blocked receives; bounds how
    #: long a receiver waits before noticing a peer's failure.
    _POLL = 0.02

    def __init__(
        self,
        n_ranks: int,
        cost_model: CommCostModel,
        *,
        timeout: float = 60.0,
    ) -> None:
        if n_ranks < 1:
            raise CommunicatorError(f"n_ranks must be >= 1, got {n_ranks}")
        self.n_ranks = n_ranks
        self.cost_model = cost_model
        self.timeout = timeout
        self.clocks: List[VirtualClock] = [VirtualClock() for _ in range(n_ranks)]
        self.aborted = threading.Event()
        self._channels: Dict[Tuple[int, int, int], "queue.Queue[_Message]"] = {}
        self._channels_lock = threading.Lock()
        self._barrier_times = [0.0] * n_ranks
        self._barrier_max = 0.0

        def _barrier_action() -> None:
            self._barrier_max = max(self._barrier_times)

        self._barrier = threading.Barrier(n_ranks, action=_barrier_action)

    def abort(self) -> None:
        """Mark the run failed: wakes blocked receivers and the barrier."""
        self.aborted.set()
        self._barrier.abort()

    def channel(self, src: int, dst: int, tag: int) -> "queue.Queue[_Message]":
        """The FIFO for (src → dst, tag), created on first use."""
        key = (src, dst, tag)
        with self._channels_lock:
            chan = self._channels.get(key)
            if chan is None:
                chan = queue.Queue()
                self._channels[key] = chan
            return chan

    def get_message(self, chan: "queue.Queue[_Message]", context: str) -> _Message:
        """Blocking dequeue with deadlock guard and abort fast-path."""
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                return chan.get(timeout=self._POLL)
            except queue.Empty:
                if self.aborted.is_set():
                    raise CommunicatorError(
                        f"{context}: aborted because a peer rank failed"
                    ) from None
                if time.monotonic() > deadline:
                    raise CommunicatorError(
                        f"{context}: timed out after {self.timeout}s — deadlock?"
                    ) from None


class Communicator:
    """One rank's endpoint of the simulated communicator."""

    def __init__(self, fabric: Fabric, rank: int) -> None:
        if not 0 <= rank < fabric.n_ranks:
            raise CommunicatorError(
                f"rank {rank} outside [0, {fabric.n_ranks})"
            )
        self._fabric = fabric
        self._rank = rank

    # -- introspection (mpi4py naming) ---------------------------------

    def Get_rank(self) -> int:
        """This rank's id (mpi4py spelling)."""
        return self._rank

    def Get_size(self) -> int:
        """Number of ranks (mpi4py spelling)."""
        return self._fabric.n_ranks

    @property
    def rank(self) -> int:
        """This rank's id."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks."""
        return self._fabric.n_ranks

    @property
    def clock(self) -> VirtualClock:
        """This rank's virtual clock."""
        return self._fabric.clocks[self._rank]

    @property
    def is_master(self) -> bool:
        """True on rank 0, the paper's MPI master machine."""
        return self._rank == 0

    def charge_compute(self, seconds: float) -> None:
        """Advance this rank's clock by ``seconds`` of modeled compute."""
        self.clock.advance(seconds)

    # -- point-to-point -------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = _DEFAULT_TAG) -> None:
        """Send ``obj`` to ``dest``.

        Charges the p2p cost to the sender; the message arrives (in
        virtual time) at the sender's post-charge clock.
        """
        self._check_peer(dest)
        cost = self._fabric.cost_model.p2p(payload_nbytes(obj))
        depart = self.clock.advance(cost)
        self._fabric.channel(self._rank, dest, tag).put(
            _Message(payload=obj, depart_time=depart)
        )

    def recv(self, source: int, tag: int = _DEFAULT_TAG) -> Any:
        """Receive the next message from ``source``.

        Blocks (real time) until the message exists; then synchronizes
        this rank's clock to the virtual arrival time.
        """
        self._check_peer(source)
        chan = self._fabric.channel(source, self._rank, tag)
        msg = self._fabric.get_message(
            chan, f"rank {self._rank} recv from {source} (tag {tag})"
        )
        self.clock.sync_to(msg.depart_time)
        return msg.payload

    # -- collectives -----------------------------------------------------

    def barrier(self) -> None:
        """Synchronize all ranks; every clock jumps to the global max."""
        fabric = self._fabric
        fabric._barrier_times[self._rank] = self.clock.now
        try:
            fabric._barrier.wait(timeout=fabric.timeout)
        except threading.BrokenBarrierError:
            raise CommunicatorError(
                f"rank {self._rank}: barrier broken (peer died or timeout)"
            ) from None
        self.clock.sync_to(fabric._barrier_max)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; returns the object everywhere.

        Root charges one tree-collective cost; receivers sync to the
        root's post-charge time (tree pipelining is folded into the
        root-side charge).
        """
        self._check_peer(root)
        fabric = self._fabric
        if self._rank == root:
            cost = fabric.cost_model.collective(payload_nbytes(obj), self.size)
            depart = self.clock.advance(cost)
            for dst in range(self.size):
                if dst != root:
                    fabric.channel(root, dst, -1).put(
                        _Message(payload=obj, depart_time=depart)
                    )
            return obj
        chan = fabric.channel(root, self._rank, -1)
        msg = fabric.get_message(chan, f"rank {self._rank} bcast from root {root}")
        self.clock.sync_to(msg.depart_time)
        return msg.payload

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter one element of ``objs`` to each rank from ``root``."""
        self._check_peer(root)
        fabric = self._fabric
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise CommunicatorError(
                    f"scatter at root needs exactly {self.size} elements"
                )
            total = sum(payload_nbytes(o) for o in objs)
            depart = self.clock.advance(
                fabric.cost_model.collective(total, self.size)
            )
            for dst in range(self.size):
                if dst != root:
                    fabric.channel(root, dst, -2).put(
                        _Message(payload=objs[dst], depart_time=depart)
                    )
            return objs[root]
        chan = fabric.channel(root, self._rank, -2)
        msg = fabric.get_message(chan, f"rank {self._rank} scatter from root {root}")
        self.clock.sync_to(msg.depart_time)
        return msg.payload

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object per rank at ``root`` (rank order).

        Returns the list at root, ``None`` elsewhere.
        """
        self._check_peer(root)
        fabric = self._fabric
        if self._rank != root:
            cost = fabric.cost_model.p2p(payload_nbytes(obj))
            depart = self.clock.advance(cost)
            fabric.channel(self._rank, root, -3).put(
                _Message(payload=obj, depart_time=depart)
            )
            return None
        out: List[Any] = [None] * self.size
        out[root] = obj
        latest = self.clock.now
        for src in range(self.size):
            if src == root:
                continue
            chan = fabric.channel(src, root, -3)
            msg = fabric.get_message(chan, f"root {root} gather from rank {src}")
            latest = max(latest, msg.depart_time)
            out[src] = msg.payload
        self.clock.sync_to(latest)
        # Root-side processing: one latency per received message.
        self.clock.advance(fabric.cost_model.latency * (self.size - 1))
        return out

    def allgather(self, obj: Any) -> List[Any]:
        """Gather at rank 0, then broadcast the full list."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(
        self,
        obj: Any,
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
        root: int = 0,
    ) -> Any:
        """Reduce with ``op`` at ``root`` (rank order, left fold)."""
        gathered = self.gather(obj, root=root)
        if self._rank != root:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = op(acc, item)
        return acc

    def allreduce(
        self, obj: Any, op: Callable[[Any, Any], Any] = lambda a, b: a + b
    ) -> Any:
        """Reduce at rank 0 and broadcast the result."""
        reduced = self.reduce(obj, op=op, root=0)
        return self.bcast(reduced, root=0)

    # -- helpers ---------------------------------------------------------

    def _check_peer(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise CommunicatorError(f"peer rank {rank} outside [0, {self.size})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator(rank={self._rank}, size={self.size})"
