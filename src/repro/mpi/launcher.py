"""SPMD program launcher (the ``mpiexec`` analogue).

:func:`run_spmd` executes one Python callable on every rank of a fresh
:class:`~repro.mpi.comm.Fabric`, each rank in its own thread, and
collects per-rank return values and final virtual clocks.

Exceptions on any rank abort the run: the first traceback (by rank
order) is re-raised in the caller after all threads have been joined,
so a failing rank can never leave the suite hanging — blocked peers
time out via the communicator's deadlock guard.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.errors import CommunicatorError
from repro.mpi.comm import Communicator, Fabric
from repro.mpi.simtime import CommCostModel

__all__ = ["SpmdResult", "run_spmd"]


@dataclass(frozen=True, slots=True)
class SpmdResult:
    """Outcome of one SPMD run.

    Attributes
    ----------
    results:
        Per-rank return values of the rank function.
    clock_times:
        Per-rank final virtual times (seconds).
    """

    results: List[Any]
    clock_times: List[float]

    @property
    def n_ranks(self) -> int:
        """Number of ranks that ran."""
        return len(self.results)

    @property
    def makespan(self) -> float:
        """The slowest rank's final virtual time."""
        return max(self.clock_times) if self.clock_times else 0.0

    @property
    def total_cpu_time(self) -> float:
        """Sum of per-rank virtual times (system CPU-time)."""
        return float(sum(self.clock_times))


def run_spmd(
    fn: Callable[[Communicator], Any],
    n_ranks: int,
    *,
    cost_model: CommCostModel | None = None,
    timeout: float = 120.0,
) -> SpmdResult:
    """Run ``fn(comm)`` on ``n_ranks`` ranks; return results and clocks.

    Parameters
    ----------
    fn:
        The SPMD program; receives that rank's
        :class:`~repro.mpi.comm.Communicator`.
    n_ranks:
        Number of ranks to launch.
    cost_model:
        Communication cost model (default:
        :class:`~repro.mpi.simtime.CommCostModel` defaults).
    timeout:
        Real-time deadlock guard passed to the fabric.

    Raises
    ------
    Exception
        Re-raises the lowest-rank exception if any rank failed.
    """
    fabric = Fabric(n_ranks, cost_model or CommCostModel(), timeout=timeout)
    results: List[Any] = [None] * n_ranks
    errors: List[Optional[BaseException]] = [None] * n_ranks

    def _worker(rank: int) -> None:
        comm = Communicator(fabric, rank)
        try:
            results[rank] = fn(comm)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[rank] = exc
            # Wake peers blocked in barrier()/recv() so they fail fast
            # instead of waiting out the timeout.
            fabric.abort()

    if n_ranks == 1:
        # Single-rank runs execute inline: simpler tracebacks, no threads.
        _worker(0)
    else:
        threads = [
            threading.Thread(target=_worker, args=(rank,), daemon=True, name=f"rank-{rank}")
            for rank in range(n_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    for rank, err in enumerate(errors):
        if err is not None:
            if isinstance(err, CommunicatorError) and any(
                e is not None and not isinstance(e, CommunicatorError)
                for e in errors
            ):
                # Prefer the root cause over secondary timeout errors.
                continue
            raise err
    return SpmdResult(
        results=results,
        clock_times=[clock.now for clock in fabric.clocks],
    )
